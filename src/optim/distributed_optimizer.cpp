#include "optim/distributed_optimizer.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "base/check.h"
#include "comm/buffer_pool.h"
#include "tensor/kernels.h"

namespace adasum::optim {

DistributedOptimizer::DistributedOptimizer(Comm& comm,
                                           std::unique_ptr<Optimizer> inner,
                                           DistributedOptions options)
    : comm_(comm), inner_(std::move(inner)), options_(options) {
  ADASUM_CHECK_GE(options_.local_steps, 1);
  if (autotune_enabled_from_env()) options_.autotune = true;
}

void DistributedOptimizer::resolve_autotune() {
  tuned_resolved_ = true;
  const auto& params = inner_->params();
  AutotuneRequest req;
  for (const nn::Parameter* p : params)
    req.payload_bytes += static_cast<double>(p->value.nbytes());
  req.num_layers =
      options_.layerwise ? std::max<int>(1, static_cast<int>(params.size()))
                         : 1;
  req.adasum = options_.op == ReduceOp::kAdasum;
  // The optimizer tunes the ALGORITHM for the world as configured: the
  // pipeline chunk is World-level state it does not own and the fusion
  // bucket is caller policy, so both enter as the single current value and
  // the pick's chunk/bucket merely echo them (see TunedConfig docs).
  const std::size_t chunk[1] = {comm_.pipeline().chunk_bytes_for(1)};
  const std::size_t bucket[1] = {options_.bucket_bytes};
  req.chunk_grid = chunk;
  req.bucket_grid = bucket;
  const Topology topo = Topology::from_env().value_or(Topology::cluster(
      comm_.size(), 1, links::infiniband100(), links::infiniband100()));
  tuned_ = autotune_allreduce(topo, req);
  if (options_.algo != AllreduceAlgo::kAuto) return;  // explicit choice wins
  switch (tuned_.algo) {
    case TunedAlgo::kRing:
      options_.algo = AllreduceAlgo::kRing;
      options_.ranks_per_node = 1;
      break;
    case TunedAlgo::kRvh:
      if (std::has_single_bit(static_cast<unsigned>(comm_.size()))) {
        options_.algo = AllreduceAlgo::kRvh;
        options_.ranks_per_node = 1;
      } else {
        // Flat RVH on a non-power-of-two world runs as the hierarchical
        // path with single-rank nodes: identical schedule plus the fold,
        // which plain kRvh cannot express.
        options_.algo = AllreduceAlgo::kHierarchical;
        options_.ranks_per_node = 1;
      }
      break;
    case TunedAlgo::kHierarchical:
      options_.algo = AllreduceAlgo::kHierarchical;
      options_.ranks_per_node = std::min(tuned_.ranks_per_node, comm_.size());
      break;
  }
}

bool DistributedOptimizer::step(double lr) {
  const auto& params = inner_->params();
  ADASUM_CHECK(!params.empty());
  if (options_.autotune && !tuned_resolved_) resolve_autotune();

  if (options_.op == ReduceOp::kSum || options_.op == ReduceOp::kAverage) {
    // Synchronous SGD: gradients accumulate across local steps; on the
    // communication step they are reduced and the optimizer runs once.
    if (++micro_step_ < options_.local_steps) return false;
    micro_step_ = 0;
    if (communicate_gradients() == ReduceOutcome::kSkipped) {
      // Recovery exhausted: no agreed-on gradient exists, so applying the
      // local one would diverge the replicas. Documented skip-step.
      ++skipped_rounds_;
    } else {
      inner_->step(lr);
    }
    inner_->zero_grad();
    ++rounds_;
    return true;
  }

  // Adasum mode (Figure 3): optimizer first, allreduce the effective
  // gradient after.
  if (micro_step_ == 0) {
    // Snapshot the round start. Warm rounds refresh the existing snapshot
    // tensors in place (same values as a fresh clone, no allocation).
    bool reuse = round_start_.size() == params.size();
    for (std::size_t i = 0; reuse && i < params.size(); ++i)
      reuse = round_start_[i].nbytes() == params[i]->value.nbytes();
    if (reuse) {
      for (std::size_t i = 0; i < params.size(); ++i)
        std::memcpy(round_start_[i].data(), params[i]->value.data(),
                    params[i]->value.nbytes());
    } else {
      round_start_.clear();
      round_start_.reserve(params.size());
      for (const nn::Parameter* p : params)
        round_start_.push_back(p->value.clone());
    }
  }
  inner_->step(lr);
  inner_->zero_grad();
  if (++micro_step_ < options_.local_steps) return false;
  micro_step_ = 0;
  communicate_effective_gradient();
  ++rounds_;
  return true;
}

ReduceOutcome DistributedOptimizer::reduce_tensors(
    std::vector<Tensor*>& tensors, ReduceOp op) {
  if (bucketed()) return reduce_bucketed(tensors, op);
  AllreduceOptions opts;
  opts.op = op;
  opts.algo = options_.algo;
  opts.ranks_per_node = options_.ranks_per_node;
  opts.compression = options_.wire_compression;
  // tag namespace per round so back-to-back rounds cannot cross-talk.
  const int tag_base = (tag_round_++ % 64) * 65536;
  // Pack through the persistent FusionBuffer: one fuse per round (the old
  // non-layerwise path fused twice to restore the table), and warm rounds
  // reuse the fused backing store outright. An empty slice table already
  // means "treat the payload as one layer", so the non-layerwise case just
  // leaves opts.slices empty — the boundary table stays intact for unpack.
  std::vector<const Tensor*> views(tensors.begin(), tensors.end());
  FusedTensor& fused = fusion_.pack(views);
  if (options_.layerwise) opts.slices = fused.slices;
  // resilient_allreduce is a plain allreduce when the world is not
  // fault-tolerant; otherwise peer failures degrade the group instead of
  // crashing the round.
  const ResilientResult res =
      resilient_allreduce(comm_, fused.flat, opts, tag_base);
  if (res.outcome == ReduceOutcome::kDegraded) ++degraded_rounds_;
  fusion_.unpack(tensors);
  return res.outcome;
}

CommEngine& DistributedOptimizer::engine() {
  if (!engine_)
    engine_ = std::make_unique<CommEngine>(
        comm_, std::max<std::size_t>(buckets_.size(), 64));
  return *engine_;
}

void DistributedOptimizer::ensure_buckets(
    const std::vector<Tensor*>& tensors) {
  bool same = bucket_signature_.size() == tensors.size();
  for (std::size_t i = 0; same && i < tensors.size(); ++i)
    same = bucket_signature_[i] == tensors[i]->nbytes();
  if (same && !buckets_.empty()) return;
  // A layout change mid-round would orphan in-flight buckets.
  ADASUM_CHECK_EQ(next_unlaunched_, std::size_t{0});
  ADASUM_CHECK_EQ(round_index_, -1);
  bucket_signature_.assign(tensors.size(), 0);
  for (std::size_t i = 0; i < tensors.size(); ++i)
    bucket_signature_[i] = tensors[i]->nbytes();
  buckets_.clear();
  // Greedy packing in parameter order (the Horovod fusion-threshold rule):
  // a bucket closes once adding the next tensor would push it over
  // bucket_bytes; an oversized tensor forms its own bucket. bucket_bytes==0
  // keeps one bucket for the whole model — the seed layout.
  std::size_t first = 0, bytes = 0;
  for (std::size_t i = 0; i < tensors.size(); ++i) {
    const std::size_t nb = tensors[i]->nbytes();
    if (i > first && options_.bucket_bytes > 0 &&
        bytes + nb > options_.bucket_bytes) {
      Bucket bk;
      bk.first = first;
      bk.last = i;
      buckets_.push_back(std::move(bk));
      first = i;
      bytes = 0;
    }
    bytes += nb;
  }
  Bucket tail;
  tail.first = first;
  tail.last = tensors.size();
  buckets_.push_back(std::move(tail));
  for (Bucket& bk : buckets_) {
    bk.opts.algo = options_.algo;
    bk.opts.ranks_per_node = options_.ranks_per_node;
    bk.opts.compression = options_.wire_compression;
    bk.opts.slices.clear();
    bk.launched = false;
  }
  grad_ready_.assign(tensors.size(), 0);
  pack_views_.reserve(tensors.size());
  unpack_views_.reserve(tensors.size());
  // reduce_bucketed queues every bucket before joining, so the engine ring
  // must hold a whole round. Safe to swap here: the CHECKs above proved the
  // engine is idle.
  if (options_.background && engine_ && engine_->capacity() < buckets_.size())
    engine_.reset();
}

int DistributedOptimizer::acquire_round_index() {
  if (round_index_ < 0) round_index_ = tag_round_++ % 64;
  return round_index_;
}

int DistributedOptimizer::bucket_tag_base(int round_index,
                                          std::size_t bucket) const {
  // Each (round, bucket) gets its own tag namespace out of the same 64
  // slots the seed cycled through per round, so engines of different ranks
  // can be on different buckets concurrently without cross-talk, and each
  // bucket lands in a distinct recovery-tag slot. With one bucket this is
  // exactly the seed's (tag_round_ % 64) * 65536.
  const std::size_t slot =
      (static_cast<std::size_t>(round_index) * buckets_.size() + bucket) % 64;
  return static_cast<int>(slot) * 65536;
}

void DistributedOptimizer::launch_bucket(std::size_t b,
                                         const std::vector<Tensor*>& tensors,
                                         ReduceOp op, int round_index) {
  Bucket& bk = buckets_[b];
  ADASUM_CHECK(!bk.launched);
  pack_views_.assign(tensors.begin() + static_cast<std::ptrdiff_t>(bk.first),
                     tensors.begin() + static_cast<std::ptrdiff_t>(bk.last));
  FusedTensor& fused = bk.fusion.pack(pack_views_);
  bk.opts.op = op;
  // The slice table depends only on the layout, which ensure_buckets pinned;
  // copy it once per layout instead of once per round (steady state must
  // not allocate).
  if (options_.layerwise && bk.opts.slices.size() != fused.slices.size())
    bk.opts.slices = fused.slices;
  const int tag_base = bucket_tag_base(round_index, b);
  if (options_.background) {
    bk.ticket = engine().submit_allreduce(fused.flat, bk.opts, tag_base);
  } else {
    bk.inline_result = resilient_allreduce(comm_, fused.flat, bk.opts,
                                           tag_base);
  }
  bk.launched = true;
}

ReduceOutcome DistributedOptimizer::reduce_bucketed(
    std::vector<Tensor*>& tensors, ReduceOp op) {
  ensure_buckets(tensors);
  const int round = acquire_round_index();
  // Launch whatever notify_grad_ready has not already sent. In background
  // mode the engine executes strictly in order, so queueing everything up
  // front is safe and lets the joins below overlap the later buckets.
  for (std::size_t b = next_unlaunched_; b < buckets_.size(); ++b)
    launch_bucket(b, tensors, op, round);
  ReduceOutcome worst = ReduceOutcome::kOk;
  bool any_degraded = false;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    Bucket& bk = buckets_[b];
    const ResilientResult res =
        options_.background ? engine().wait(bk.ticket) : bk.inline_result;
    if (res.outcome == ReduceOutcome::kDegraded) {
      any_degraded = true;
      if (worst == ReduceOutcome::kOk) worst = ReduceOutcome::kDegraded;
    } else if (res.outcome == ReduceOutcome::kSkipped) {
      // One skipped bucket poisons the round: the caller must treat the
      // whole update as skipped, or replicas would diverge per bucket. The
      // outcome is uniform across survivors (PR 2 protocol), so every rank
      // takes the same branch.
      worst = ReduceOutcome::kSkipped;
    }
    unpack_views_.assign(
        tensors.begin() + static_cast<std::ptrdiff_t>(bk.first),
        tensors.begin() + static_cast<std::ptrdiff_t>(bk.last));
    bk.fusion.unpack(unpack_views_);
    bk.launched = false;
  }
  if (any_degraded) ++degraded_rounds_;
  next_unlaunched_ = 0;
  round_index_ = -1;
  std::fill(grad_ready_.begin(), grad_ready_.end(), char{0});
  return worst;
}

void DistributedOptimizer::notify_grad_ready(std::size_t param_index) {
  if (!options_.background) return;
  if (options_.op != ReduceOp::kSum && options_.op != ReduceOp::kAverage)
    return;
  // Only the communicating microstep reduces; earlier microsteps are still
  // accumulating, so their "ready" gradients are not final.
  if (micro_step_ != options_.local_steps - 1) return;
  const auto& params = inner_->params();
  ADASUM_CHECK_LT(param_index, params.size());
  if (grads_view_.size() != params.size()) {
    grads_view_.clear();
    grads_view_.reserve(params.size());
    for (nn::Parameter* p : inner_->params())
      grads_view_.push_back(&p->grad);
  }
  ensure_buckets(grads_view_);
  grad_ready_[param_index] = 1;
  const int round = acquire_round_index();
  // Buckets launch in order the moment every tensor in them is ready —
  // communication overlaps the rest of backprop; step() only joins.
  while (next_unlaunched_ < buckets_.size()) {
    const Bucket& bk = buckets_[next_unlaunched_];
    bool ready = true;
    for (std::size_t i = bk.first; ready && i < bk.last; ++i)
      ready = grad_ready_[i] != 0;
    if (!ready) break;
    launch_bucket(next_unlaunched_, grads_view_, options_.op, round);
    ++next_unlaunched_;
  }
}

ReduceOutcome DistributedOptimizer::communicate_gradients() {
  if (grads_view_.size() != inner_->params().size()) {
    grads_view_.clear();
    grads_view_.reserve(inner_->params().size());
    for (nn::Parameter* p : inner_->params())
      grads_view_.push_back(&p->grad);
  }
  return reduce_tensors(grads_view_, options_.op);
}

bool DistributedOptimizer::round_overflowed_globally(bool local_overflow) {
  if (comm_.fault_tolerant()) {
    // The wire allreduce below would hang on a dead rank; the liveness-aware
    // vote is the same OR over exactly the ranks still participating.
    return comm_.vote_failure(local_overflow);
  }
  std::vector<int> everyone(static_cast<std::size_t>(comm_.size()));
  for (int r = 0; r < comm_.size(); ++r)
    everyone[static_cast<std::size_t>(r)] = r;
  const std::vector<double> overflow_sum = comm_.allreduce_sum_doubles(
      std::vector<double>{local_overflow ? 1.0 : 0.0}, everyone,
      /*tag=*/(tag_round_ % 64) * 65536 + 60000);
  return overflow_sum[0] > 0.0;
}

void DistributedOptimizer::revert_to_round_start() {
  const auto& params = inner_->params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    std::memcpy(params[i]->value.data(), round_start_[i].data(),
                round_start_[i].nbytes());
  }
}

void DistributedOptimizer::communicate_effective_gradient_overlapped() {
  const auto& params = inner_->params();
  // Persistent deltas: first round allocates, warm rounds only compute.
  bool reuse = eff_.size() == params.size();
  for (std::size_t i = 0; reuse && i < params.size(); ++i)
    reuse = eff_[i].nbytes() == params[i]->value.nbytes();
  if (!reuse) {
    eff_.clear();
    eff_views_.clear();
    eff_.reserve(params.size());
    eff_views_.reserve(params.size());
    for (const nn::Parameter* p : params) eff_.push_back(p->value.clone());
    for (Tensor& t : eff_) eff_views_.push_back(&t);
  }
  ensure_buckets(eff_views_);
  const int round = acquire_round_index();
  // The pipeline: compute bucket b's deltas, submit, move on — the engine
  // reduces bucket b while this thread computes bucket b+1 (Figure 3's
  // compute/communication overlap, applied to the local-SGD delta).
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const Bucket& bk = buckets_[b];
    for (std::size_t i = bk.first; i < bk.last; ++i) {
      std::memcpy(eff_[i].data(), params[i]->value.data(),
                  params[i]->value.nbytes());
      kernels::axpy(-1.0, round_start_[i].span<float>(),
                    eff_[i].span<float>());
    }
    launch_bucket(b, eff_views_, ReduceOp::kAdasum, round);
    ++next_unlaunched_;
  }
  // Joins every bucket in order and unpacks; launches nothing new.
  if (reduce_bucketed(eff_views_, ReduceOp::kAdasum) ==
      ReduceOutcome::kSkipped) {
    revert_to_round_start();
    ++skipped_rounds_;
    return;
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    std::memcpy(params[i]->value.data(), round_start_[i].data(),
                round_start_[i].nbytes());
    kernels::add(eff_[i].span<float>(), params[i]->value.span<float>());
  }
}

void DistributedOptimizer::communicate_effective_gradient() {
  // Resolve the wire codec the collectives will apply; the error-feedback
  // pre-pass below must mirror it exactly.
  CompressionOptions wirec = options_.wire_compression;
  if (wirec.mode == CompressionMode::kAuto) wirec = comm_.compression();
  const bool wire_ef = wirec.active() && options_.error_feedback &&
                       options_.compression == GradientCompression::kNone;
  if (options_.background &&
      options_.compression == GradientCompression::kNone && !wire_ef) {
    // Wire compression without error feedback still flows through here: the
    // collectives compress transfers on the engine thread transparently.
    communicate_effective_gradient_overlapped();
    return;
  }
  const auto& params = inner_->params();
  // effective_gradient = current - round_start (Figure 3).
  std::vector<Tensor> eff;
  eff.reserve(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor delta = params[i]->value.clone();
    kernels::axpy(-1.0, round_start_[i].span<float>(), delta.span<float>());
    eff.push_back(std::move(delta));
  }

  if (options_.compression == GradientCompression::kFp16) {
    // Scale into fp16 (§4.4.1). Overflow on any rank skips the round on all.
    // The vote runs on this thread BEFORE anything reaches the engine, so
    // the single-threaded vote protocol is undisturbed by background mode.
    const double scale = scaler_.scale();
    std::vector<Tensor> compressed;
    compressed.reserve(eff.size());
    bool local_overflow = false;
    for (const Tensor& t : eff) {
      Tensor h = cast_to_fp16_scaled(t, scale);
      if (tensor_overflowed(h)) local_overflow = true;
      compressed.push_back(std::move(h));
    }
    const bool overflowed = round_overflowed_globally(local_overflow);
    if (!scaler_.update(overflowed) || overflowed) {
      // Revert to the round start: the round is skipped consistently
      // everywhere (all ranks saw the same summed flag).
      revert_to_round_start();
      ++skipped_rounds_;
      return;
    }
    std::vector<Tensor*> ptrs;
    ptrs.reserve(compressed.size());
    for (Tensor& t : compressed) ptrs.push_back(&t);
    if (reduce_tensors(ptrs, ReduceOp::kAdasum) == ReduceOutcome::kSkipped) {
      revert_to_round_start();
      ++skipped_rounds_;
      return;
    }
    for (std::size_t i = 0; i < params.size(); ++i) {
      const Tensor reduced = cast_from_fp16_scaled(compressed[i], scale);
      // w = round_start + reduced_effective_gradient.
      std::memcpy(params[i]->value.data(), round_start_[i].data(),
                  round_start_[i].nbytes());
      kernels::add(reduced.span<float>(), params[i]->value.span<float>());
    }
    return;
  }

  if (options_.compression == GradientCompression::kInt8 || wire_ef) {
    if (!error_feedback_) {
      std::vector<std::size_t> sizes;
      for (const Tensor& t : eff) sizes.push_back(t.size());
      error_feedback_ = std::make_unique<ErrorFeedback>(std::move(sizes));
    }
    std::size_t max_elems = 0;
    for (const Tensor& t : eff) max_elems = std::max(max_elems, t.size());
    // Pooled scratch sized once for the largest layer: warm rounds lease the
    // same blocks back from the pool, so the steady state allocates nothing
    // (the bench gate counts allocations across whole compressed steps).
    PooledBuffer roundtrip_buf(comm_.pool(), max_elems * sizeof(float));
    if (wire_ef) {
      // Error feedback for the wire codec: compensate with last round's
      // residual, snap the effective gradient through the exact codec the
      // collectives apply on the wire, and bank what the snap dropped. The
      // collective then re-quantizes grid-point values, so the transfer adds
      // no error beyond what the residual already captured.
      PooledBuffer blob(comm_.pool(), compressed_wire_bytes(max_elems, wirec));
      for (std::size_t i = 0; i < eff.size(); ++i) {
        auto values = eff[i].span<float>();
        error_feedback_->compensate(i, values);
        compress_f32(values, wirec, blob.data());
        const std::span<float> transmitted =
            roundtrip_buf.as<float>(values.size());
        decompress_f32(blob.data(), wirec, transmitted);
        error_feedback_->record(i, values, transmitted);
        std::memcpy(values.data(), transmitted.data(),
                    values.size() * sizeof(float));
      }
    } else {
      // Legacy per-tensor int8 with error feedback: compensate, quantize,
      // transmit the dequantized values (decompress-reduce transport model),
      // and bank the new residual.
      PooledBuffer q8_buf(comm_.pool(), max_elems);
      for (std::size_t i = 0; i < eff.size(); ++i) {
        auto values = eff[i].span<float>();
        error_feedback_->compensate(i, values);
        const std::span<std::int8_t> q = q8_buf.as<std::int8_t>(values.size());
        const float scale = quantize_int8_into(values, q);
        const std::span<float> transmitted =
            roundtrip_buf.as<float>(values.size());
        dequantize_int8(q, scale, transmitted);
        error_feedback_->record(i, values, transmitted);
        std::memcpy(values.data(), transmitted.data(),
                    values.size() * sizeof(float));
      }
    }
  }

  std::vector<Tensor*> ptrs;
  ptrs.reserve(eff.size());
  for (Tensor& t : eff) ptrs.push_back(&t);
  if (reduce_tensors(ptrs, ReduceOp::kAdasum) == ReduceOutcome::kSkipped) {
    // No agreed-on effective gradient: every rank reverts to the round
    // start, exactly like an fp16 overflow skip.
    revert_to_round_start();
    ++skipped_rounds_;
    return;
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    std::memcpy(params[i]->value.data(), round_start_[i].data(),
                round_start_[i].nbytes());
    kernels::add(eff[i].span<float>(), params[i]->value.span<float>());
  }
}

}  // namespace adasum::optim
