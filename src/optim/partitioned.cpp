#include "optim/partitioned.h"

#include <algorithm>
#include <numeric>

#include "base/check.h"

namespace adasum::optim {

Partition layer_aligned_partition(const std::vector<nn::Parameter*>& params,
                                  int num_shards) {
  ADASUM_CHECK_GE(num_shards, 1);
  Partition partition;
  partition.shards.assign(static_cast<std::size_t>(num_shards), {});
  std::vector<std::size_t> shard_load(static_cast<std::size_t>(num_shards), 0);

  // Largest-first greedy: sort parameter indices by size descending, place
  // each whole tensor on the currently lightest shard.
  std::vector<std::size_t> order(params.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return params[a]->size() > params[b]->size();
  });
  for (std::size_t idx : order) {
    const std::size_t lightest = static_cast<std::size_t>(
        std::min_element(shard_load.begin(), shard_load.end()) -
        shard_load.begin());
    partition.shards[lightest].push_back(idx);
    shard_load[lightest] += params[idx]->size();
    partition.total_elems += params[idx]->size();
  }
  // Keep each shard's parameters in model order (stable downstream layout).
  for (auto& shard : partition.shards) std::sort(shard.begin(), shard.end());
  partition.max_shard_elems =
      *std::max_element(shard_load.begin(), shard_load.end());
  return partition;
}

std::size_t MemoryModel::max_microbatch(bool partitioned,
                                        int num_local_gpus) const {
  ADASUM_CHECK_GE(num_local_gpus, 1);
  const double state = partitioned
                           ? optimizer_state_bytes / num_local_gpus
                           : optimizer_state_bytes;
  const double free_bytes =
      gpu_memory_bytes - fixed_overhead_bytes - model_bytes - state;
  if (free_bytes <= 0 || activation_bytes_per_example <= 0) return 0;
  return static_cast<std::size_t>(free_bytes / activation_bytes_per_example);
}

double partitioned_update_time(double serial_update_seconds,
                               const Partition& partition,
                               double model_bytes,
                               const LinkParams& intra_link) {
  ADASUM_CHECK_GT(partition.total_elems, 0u);
  const double shard_fraction =
      static_cast<double>(partition.max_shard_elems) /
      static_cast<double>(partition.total_elems);
  // Each GPU broadcasts its updated shard to the others; the paper overlaps
  // this with the next layer's Adasum, retaining ~the largest single-shard
  // transfer on the critical path.
  const double broadcast =
      intra_link.transfer_time(model_bytes * shard_fraction);
  return serial_update_seconds * shard_fraction + broadcast;
}

}  // namespace adasum::optim
