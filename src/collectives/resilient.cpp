#include "collectives/resilient.h"

#include <cstring>
#include <string>

#include "analysis/analyzer.h"
#include "base/check.h"
#include "comm/buffer_pool.h"
#include "core/adasum.h"
#include "tensor/kernels.h"

namespace adasum {
namespace {

// Recovery traffic lives in its own tag universe, far above the collectives'
// per-round namespaces, with a distinct slot per (round, attempt) so a retry
// can never match a leftover message from the attempt it is replacing.
constexpr int kRecoveryTagBase = 1 << 26;

int recovery_tag(int tag_base, int attempt) {
  return kRecoveryTagBase + ((tag_base >> 16) & 63) * 1024 + attempt * 16;
}

// Receives exactly tensor.nbytes() from `src` or throws CommProtocol; the
// transport buffer returns to the pool on every path.
void recv_same_size(Comm& comm, const Tensor& tensor, int src, int tag,
                    std::byte* dest) {
  std::vector<std::byte> raw = comm.recv_bytes(src, tag);
  const std::size_t got = raw.size();
  const bool ok = got == tensor.nbytes();
  if (ok && got > 0) std::memcpy(dest, raw.data(), got);
  comm.pool().release(std::move(raw));
  if (!ok)
    throw CommProtocol("degraded reduce: got " + std::to_string(got) +
                       " bytes from rank " + std::to_string(src) + ", want " +
                       std::to_string(tensor.nbytes()));
}

// Gather → reduce-on-root → broadcast over the survivor group. Correctness
// path, not a hot path: a degraded round is rare enough that the simple
// star schedule (deadline-protected on every receive) beats a recursive one
// that would itself need per-level failure handling.
void degraded_reduce(Comm& comm, Tensor& tensor,
                     const AllreduceOptions& options,
                     std::span<const int> group, int tag) {
  const int members = static_cast<int>(group.size());
  if (members <= 1 || tensor.empty()) return;
  const int root = group[0];
  const std::span<const TensorSlice> slices{options.slices};

#if ADASUM_ANALYZE
  // Star over the survivor group: gather on `tag`, broadcast on `tag + 1`.
  // In fault runs the analyzer is observe-only so this declaration is
  // skipped; it validates when the degraded path is driven directly.
  analysis::EpochGuard epoch(comm.analyzer(), comm.rank(),
                             "degraded_reduce");
  if (epoch.declaring()) {
    analysis::EpochExpectation& ex = epoch.expect();
    if (comm.rank() == root) {
      for (int i = 1; i < members; ++i) {
        ex.recv(group[static_cast<std::size_t>(i)], tag);
        ex.send(group[static_cast<std::size_t>(i)], tag + 1);
      }
    } else {
      ex.send(root, tag);
      ex.recv(root, tag + 1);
    }
  }
#endif

  if (comm.rank() == root) {
    if (options.op == ReduceOp::kAdasum) {
      std::vector<Tensor> grads;
      grads.reserve(group.size());
      grads.push_back(tensor.clone());
      for (int i = 1; i < members; ++i) {
        Tensor g(tensor.shape(), tensor.dtype());
        recv_same_size(comm, tensor, group[static_cast<std::size_t>(i)], tag,
                       g.data());
        grads.push_back(std::move(g));
      }
      const Tensor combined = slices.empty()
                                  ? adasum_tree(grads)
                                  : adasum_tree_layerwise(grads, slices);
      std::memcpy(tensor.data(), combined.data(), tensor.nbytes());
    } else {
      PooledBuffer scratch(comm.pool(), tensor.nbytes());
      for (int i = 1; i < members; ++i) {
        recv_same_size(comm, tensor, group[static_cast<std::size_t>(i)], tag,
                       scratch.bytes().data());
        kernels::add_bytes(scratch.bytes().data(), tensor.data(),
                           tensor.size(), tensor.dtype());
      }
      if (options.op == ReduceOp::kAverage)
        kernels::scale_bytes(1.0 / members, tensor.data(), tensor.size(),
                             tensor.dtype());
    }
    for (int i = 1; i < members; ++i)
      comm.send_bytes(group[static_cast<std::size_t>(i)],
                      {tensor.data(), tensor.nbytes()}, tag + 1);
  } else {
    comm.send_bytes(root, {tensor.data(), tensor.nbytes()}, tag);
    recv_same_size(comm, tensor, root, tag + 1, tensor.data());
  }
}

}  // namespace

ResilientResult resilient_allreduce(Comm& comm, Tensor& tensor,
                                    const AllreduceOptions& options,
                                    int tag_base) {
  ResilientResult result;
  result.participants = comm.size();
  if (!comm.fault_tolerant()) {
    allreduce(comm, tensor, options, tag_base);
    return result;
  }

  // Snapshot the input so every retry (and the final skip) starts from the
  // rank's clean local contribution, not a half-reduced payload.
  PooledBuffer snapshot(comm.pool(), tensor.nbytes());
  if (tensor.nbytes() > 0)
    std::memcpy(snapshot.bytes().data(), tensor.data(), tensor.nbytes());

  bool failed = false;
  try {
    allreduce(comm, tensor, options, tag_base);
  } catch (const CommError&) {
    failed = true;
  }
  if (!comm.vote_failure(failed)) return result;

  std::vector<int> group;
  const int max_attempts = comm.max_recovery_attempts();
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    ++result.attempts;
    if (tensor.nbytes() > 0)
      std::memcpy(tensor.data(), snapshot.bytes().data(), tensor.nbytes());
    comm.recovery_enroll(group);
    // Between the enrollment barrier and the vote below every survivor is
    // quiesced in this very sequence, so draining here provably removes all
    // traffic of the failed attempt and races with none of the retry's.
    comm.drain_inboxes();
    comm.vote_failure(false);

    bool attempt_failed = false;
    try {
      degraded_reduce(comm, tensor, options, group,
                      recovery_tag(tag_base, attempt));
    } catch (const CommError&) {
      attempt_failed = true;
    }
    if (!comm.vote_failure(attempt_failed)) {
      result.outcome = ReduceOutcome::kDegraded;
      result.participants = static_cast<int>(group.size());
      return result;
    }
  }

  if (tensor.nbytes() > 0)
    std::memcpy(tensor.data(), snapshot.bytes().data(), tensor.nbytes());
  result.outcome = ReduceOutcome::kSkipped;
  result.participants = 1;
  return result;
}

ResilientResult resilient_allreduce_fused(Comm& comm,
                                          const std::vector<Tensor*>& tensors,
                                          const AllreduceOptions& options,
                                          FusionBuffer& buffer, int tag_base) {
  ADASUM_CHECK(!tensors.empty());
  std::vector<const Tensor*> views(tensors.begin(), tensors.end());
  FusedTensor& fused = buffer.pack(views);
  AllreduceOptions fused_options = options;
  fused_options.slices = fused.slices;
  const ResilientResult result =
      resilient_allreduce(comm, fused.flat, fused_options, tag_base);
  buffer.unpack(tensors);
  return result;
}

}  // namespace adasum
