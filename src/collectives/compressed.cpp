#include "collectives/compressed.h"

#include "base/check.h"

namespace adasum {

WireCompressor::WireCompressor(Comm& comm, DType dtype,
                               const CompressionOptions& opts,
                               std::size_t max_elems)
    : comm_(comm), opts_(opts) {
  if (!opts_.active()) return;  // inactive: touch neither pool nor dtype
  ADASUM_CHECK(dtype == DType::kFloat32);
  const std::size_t bytes = compressed_wire_bytes(max_elems, opts_);
  blobs_[0].emplace(comm.pool(), bytes);
  blobs_[1].emplace(comm.pool(), bytes);
}

void WireCompressor::encode(int slot, const std::byte* data,
                            std::size_t elems) {
  compress_f32({reinterpret_cast<const float*>(data), elems}, opts_,
               blobs_[slot]->data());
}

void WireCompressor::decode(int slot, std::byte* dest, std::size_t elems) {
  decompress_f32(blobs_[slot]->data(), opts_,
                 {reinterpret_cast<float*>(dest), elems});
}

void WireCompressor::send_blob(int dst, int slot, std::size_t elems,
                               std::size_t chunk, int tag) {
  comm_.send_chunks(dst, blobs_[slot]->bytes(wire_bytes(elems)), chunk, tag);
}

void WireCompressor::recv_blob(int src, int slot, std::size_t elems,
                               std::size_t chunk, int tag) {
  comm_.recv_chunks_into(src, blobs_[slot]->bytes(wire_bytes(elems)), chunk,
                         tag);
}

void WireCompressor::send(int dst, const std::byte* data, std::size_t elems,
                          std::size_t chunk, int tag) {
  encode(0, data, elems);
  send_blob(dst, 0, elems, chunk, tag);
}

void WireCompressor::send_requantize(int dst, std::byte* data,
                                     std::size_t elems, std::size_t chunk,
                                     int tag) {
  encode(0, data, elems);
  send_blob(dst, 0, elems, chunk, tag);
  // The mailbox owns a copy once send returns, so decoding over the source
  // is safe — and leaves this rank bit-identical to every receiver.
  decode(0, data, elems);
}

void WireCompressor::recv_into(int src, std::byte* dest, std::size_t elems,
                               std::size_t chunk, int tag) {
  recv_blob(src, 0, elems, chunk, tag);
  decode(0, dest, elems);
}

}  // namespace adasum
