#include "collectives/compressed.h"

#include "base/check.h"

namespace adasum {

WireCompressor::WireCompressor(Comm& comm, DType dtype,
                               const CompressionOptions& opts,
                               std::size_t max_elems, bool bulk_views)
    : comm_(comm), opts_(opts), bulk_views_(bulk_views) {
  if (!opts_.active()) return;  // inactive: touch neither pool nor dtype
  ADASUM_CHECK(dtype == DType::kFloat32);
  const std::size_t bytes = compressed_wire_bytes(max_elems, opts_);
  blobs_[0].emplace(comm.pool(), bytes);
  blobs_[1].emplace(comm.pool(), bytes);
}

WireCompressor::~WireCompressor() {
  // The blob slots return to the shared pool on destruction; a view still
  // under a peer's decode must retire first or the next lessee would write
  // under the reader. The collectives fence before unwinding, so this is
  // normally an instant re-check — it only ever blocks on an early exit.
  if (blob_view_out_) {
    try {
      comm_.bulk_fence();
    } catch (...) {
      // Unwinding through an aborted world: the transport's drain reclaims
      // everything; swallowing keeps the destructor from terminating.
    }
  }
}

void WireCompressor::encode(int slot, const std::byte* data,
                            std::size_t elems) {
  // Writing a slot that still backs a published view would race the peer's
  // decode. In the RVH schedules the peer's consuming receive only waits on
  // transfers this rank already completed, so the fence always terminates.
  if (blob_view_out_) {
    comm_.bulk_fence();
    blob_view_out_ = false;
  }
  compress_f32({reinterpret_cast<const float*>(data), elems}, opts_,
               blobs_[slot]->data());
}

void WireCompressor::decode(int slot, std::byte* dest, std::size_t elems) {
  decompress_f32(blobs_[slot]->data(), opts_,
                 {reinterpret_cast<float*>(dest), elems});
}

void WireCompressor::send_blob(int dst, int slot, std::size_t elems,
                               std::size_t chunk, int tag) {
  comm_.send_chunks(dst, blobs_[slot]->bytes(wire_bytes(elems)), chunk, tag);
}

void WireCompressor::recv_blob(int src, int slot, std::size_t elems,
                               std::size_t chunk, int tag) {
  comm_.recv_chunks_into(src, blobs_[slot]->bytes(wire_bytes(elems)), chunk,
                         tag);
}

void WireCompressor::send_bulk_blob(int dst, std::size_t elems,
                                    std::size_t chunk, int tag) {
  if (comm_.bulk_zero_copy()) blob_view_out_ = true;
  comm_.send_bulk(dst, blobs_[0]->bytes(wire_bytes(elems)), chunk, tag);
}

void WireCompressor::send(int dst, const std::byte* data, std::size_t elems,
                          std::size_t chunk, int tag) {
  encode(0, data, elems);
  if (bulk_views_)
    send_bulk_blob(dst, elems, chunk, tag);
  else
    send_blob(dst, 0, elems, chunk, tag);
}

void WireCompressor::send_requantize(int dst, std::byte* data,
                                     std::size_t elems, std::size_t chunk,
                                     int tag) {
  encode(0, data, elems);
  if (bulk_views_)
    send_bulk_blob(dst, elems, chunk, tag);
  else
    send_blob(dst, 0, elems, chunk, tag);
  // The transport owns a copy — or, zero-copy, the peer only READS the
  // published slot — so decoding over the source is safe, and leaves this
  // rank bit-identical to every receiver.
  decode(0, data, elems);
}

void WireCompressor::recv_into(int src, std::byte* dest, std::size_t elems,
                               std::size_t chunk, int tag) {
  if (bulk_views_) {
    // The compressed remote-span path: on a zero-copy transport `blob` is
    // rebound to the PEER's published slot and the decode runs directly off
    // it — no staging copy; the eager path stages in slot 0 as before.
    const std::byte* blob = blobs_[0]->data();
    BulkRecv held = comm_.recv_bulk(
        src, blobs_[0]->bytes(wire_bytes(elems)), chunk, tag,
        [&](const std::byte* base, std::size_t, std::size_t) { blob = base; });
    decompress_f32(blob, opts_, {reinterpret_cast<float*>(dest), elems});
    return;
  }
  recv_blob(src, 0, elems, chunk, tag);
  decode(0, dest, elems);
}

}  // namespace adasum
