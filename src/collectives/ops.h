// Reduction-operation and algorithm selection types for allreduce.
#pragma once

#include <string>
#include <vector>

#include "tensor/compress/compress.h"
#include "tensor/fusion.h"

namespace adasum {

// What the allreduce computes across ranks. kSum and kAverage are the
// synchronous-SGD baselines ("Horovod's default Sum operator", §5.1.1);
// kAdasum is the paper's operator (op=hvd.Adasum).
enum class ReduceOp { kSum, kAverage, kAdasum };

inline std::string reduce_op_name(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return "Sum";
    case ReduceOp::kAverage: return "Average";
    case ReduceOp::kAdasum: return "Adasum";
  }
  return "?";
}

// Which schedule carries the reduction.
enum class AllreduceAlgo {
  kAuto,          // RVH for power-of-two worlds, serial-tree fallback else
  kRvh,           // recursive vector halving (Algorithm 1 for Adasum)
  kRing,          // ring (sum) / chain (linear Adasum, §4.2.3)
  kHierarchical,  // §4.2.2: local reduce + cross-node RVH + local gather
};

struct AllreduceOptions {
  ReduceOp op = ReduceOp::kSum;
  AllreduceAlgo algo = AllreduceAlgo::kAuto;
  // Layer boundaries inside the (fused) payload; when non-empty, Adasum is
  // applied per layer (§3.6). Ignored for Sum/Average.
  std::vector<TensorSlice> slices;
  // For kHierarchical: how many consecutive ranks form one "node".
  int ranks_per_node = 1;
  // Wire compression for transferred payloads (DESIGN.md §13). kAuto defers
  // to the World's configuration (ADASUM_COMPRESS / World::set_compression);
  // fp32 payloads only — other dtypes transfer uncompressed.
  CompressionOptions compression;
};

}  // namespace adasum
