#include "collectives/primitives.h"

#include <algorithm>
#include <cstring>

#include "analysis/analyzer.h"
#include "base/check.h"
#include "comm/buffer_pool.h"
#include "tensor/kernels.h"

namespace adasum {

ChunkRange chunk_range(std::size_t count, int p, int c) {
  ADASUM_CHECK_GE(c, 0);
  ADASUM_CHECK_LE(c, p);
  return ChunkRange{
      count * static_cast<std::size_t>(c) / static_cast<std::size_t>(p),
      count * static_cast<std::size_t>(c + 1) / static_cast<std::size_t>(p)};
}

namespace {

int index_in_group(std::span<const int> group, int rank) {
  for (std::size_t i = 0; i < group.size(); ++i)
    if (group[i] == rank) return static_cast<int>(i);
  return -1;
}

// Shared ring bodies, parameterized on the chunk table so the default
// (chunk_range) and explicit-bounds entry points run one schedule. ChunkFn:
// int chunk index -> ChunkRange.
template <typename ChunkFn>
void ring_reduce_scatter_sum_impl(Comm& comm, std::byte* data, DType dtype,
                                  std::span<const int> group, int tag_base,
                                  const ChunkFn& chunk_of) {
  const int p = static_cast<int>(group.size());
  ADASUM_CHECK_GT(p, 0);
  const int me = index_in_group(group, comm.rank());
  ADASUM_CHECK_MSG(me >= 0, "calling rank must be in the group");
  if (p == 1) return;
  const std::size_t elem = dtype_size(dtype);
  const int next = group[static_cast<std::size_t>((me + 1) % p)];
  const int prev = group[static_cast<std::size_t>((me + p - 1) % p)];
  // A ring sender only stalls when the dependency chain wraps back through
  // its successor — up to p-1 sends can queue on this channel first.
  comm.reserve_channel_depth(next, static_cast<std::size_t>(p) + 2);
#if ADASUM_ANALYZE
  analysis::EpochGuard epoch(comm.analyzer(), comm.rank(),
                             "ring_reduce_scatter_sum");
  if (epoch.declaring()) {
    analysis::EpochExpectation& ex = epoch.expect();
    for (int s = 0; s < p - 1; ++s) {
      ex.send(next, tag_base + s);
      ex.recv(prev, tag_base + s);
    }
  }
#endif
  // Incoming chunks stage in one pooled buffer sized for the largest chunk.
  std::size_t max_chunk = 0;
  for (int c = 0; c < p; ++c)
    max_chunk = std::max(max_chunk, chunk_of(c).size());
  PooledBuffer scratch(comm.pool(), max_chunk * elem);
  for (int s = 0; s < p - 1; ++s) {
    const int send_chunk = (me - s + p) % p;
    const int recv_chunk = (me - s - 1 + p) % p;
    const ChunkRange sc = chunk_of(send_chunk);
    comm.send_bytes(next, {data + sc.begin * elem, sc.size() * elem},
                    tag_base + s);
    const ChunkRange rc = chunk_of(recv_chunk);
    comm.recv_bytes_into(prev, scratch.bytes(rc.size() * elem), tag_base + s);
    kernels::add_bytes(scratch.data(), data + rc.begin * elem, rc.size(),
                       dtype);
  }
}

template <typename ChunkFn>
void ring_allgather_impl(Comm& comm, std::byte* data, DType dtype,
                         std::span<const int> group, int tag_base,
                         const ChunkFn& chunk_of) {
  const int p = static_cast<int>(group.size());
  ADASUM_CHECK_GT(p, 0);
  const int me = index_in_group(group, comm.rank());
  ADASUM_CHECK_MSG(me >= 0, "calling rank must be in the group");
  if (p == 1) return;
  const std::size_t elem = dtype_size(dtype);
  const int next = group[static_cast<std::size_t>((me + 1) % p)];
  const int prev = group[static_cast<std::size_t>((me + p - 1) % p)];
  comm.reserve_channel_depth(next, static_cast<std::size_t>(p) + 2);
#if ADASUM_ANALYZE
  analysis::EpochGuard epoch(comm.analyzer(), comm.rank(), "ring_allgather");
  if (epoch.declaring()) {
    analysis::EpochExpectation& ex = epoch.expect();
    for (int s = 0; s < p - 1; ++s) {
      ex.send(next, tag_base + s);
      ex.recv(prev, tag_base + s);
    }
  }
#endif
  for (int s = 0; s < p - 1; ++s) {
    const int send_chunk = (me + 1 - s + p) % p;
    const int recv_chunk = (me - s + p) % p;
    const ChunkRange sc = chunk_of(send_chunk);
    comm.send_bytes(next, {data + sc.begin * elem, sc.size() * elem},
                    tag_base + s);
    const ChunkRange rc = chunk_of(recv_chunk);
    // Deposit straight into the chunk's final position — no staging copy.
    comm.recv_bytes_into(prev, {data + rc.begin * elem, rc.size() * elem},
                         tag_base + s);
  }
}

void check_bounds(std::span<const std::size_t> bounds,
                  std::span<const int> group, std::size_t count) {
  ADASUM_CHECK_EQ(bounds.size(), group.size() + 1);
  ADASUM_CHECK_EQ(bounds.front(), 0u);
  ADASUM_CHECK_EQ(bounds.back(), count);
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i)
    ADASUM_CHECK_LE(bounds[i], bounds[i + 1]);
}

}  // namespace

void broadcast(Comm& comm, std::byte* data, std::size_t bytes,
               std::span<const int> group, int root_index, int tag_base) {
  const int p = static_cast<int>(group.size());
  ADASUM_CHECK_GT(p, 0);
  ADASUM_CHECK_GE(root_index, 0);
  ADASUM_CHECK_LT(root_index, p);
  const int me = index_in_group(group, comm.rank());
  ADASUM_CHECK_MSG(me >= 0, "calling rank must be in the broadcast group");
  if (p == 1) return;
  // Rotate so the root is virtual rank 0, then run a binomial tree: in round
  // k, ranks < 2^k send to rank + 2^k.
  const int vrank = (me - root_index + p) % p;
#if ADASUM_ANALYZE
  // The binomial tree below, replayed: whether this rank sends or receives
  // in round k depends only on its virtual rank.
  analysis::EpochGuard epoch(comm.analyzer(), comm.rank(), "broadcast");
  if (epoch.declaring()) {
    analysis::EpochExpectation& ex = epoch.expect();
    bool have = vrank == 0;
    for (int dist = 1; dist < p; dist <<= 1) {
      if (have && vrank + dist < p) {
        ex.send(group[static_cast<std::size_t>(
                    (vrank + dist + root_index) % p)],
                tag_base);
      } else if (!have && vrank < 2 * dist) {
        ex.recv(group[static_cast<std::size_t>(
                    (vrank - dist + root_index + p) % p)],
                tag_base);
        have = true;
      }
    }
  }
#endif
  bool have_data = vrank == 0;
  for (int dist = 1; dist < p; dist <<= 1) {
    if (have_data && vrank + dist < p) {
      const int peer = group[static_cast<std::size_t>(
          (vrank + dist + root_index) % p)];
      comm.send_bytes(peer, {data, bytes}, tag_base);
    } else if (!have_data && vrank < 2 * dist) {
      const int peer = group[static_cast<std::size_t>(
          (vrank - dist + root_index + p) % p)];
      comm.recv_bytes_into(peer, {data, bytes}, tag_base);
      have_data = true;
    }
  }
}

void ring_reduce_scatter_sum(Comm& comm, std::byte* data, std::size_t count,
                             DType dtype, std::span<const int> group,
                             int tag_base) {
  if (count == 0) return;
  const int p = static_cast<int>(group.size());
  ring_reduce_scatter_sum_impl(
      comm, data, dtype, group, tag_base,
      [count, p](int c) { return chunk_range(count, p, c); });
}

void ring_allgather(Comm& comm, std::byte* data, std::size_t count,
                    DType dtype, std::span<const int> group, int tag_base) {
  if (count == 0) return;
  const int p = static_cast<int>(group.size());
  ring_allgather_impl(comm, data, dtype, group, tag_base, [count, p](int c) {
    return chunk_range(count, p, c);
  });
}

void ring_reduce_scatter_sum(Comm& comm, std::byte* data, std::size_t count,
                             DType dtype, std::span<const int> group,
                             std::span<const std::size_t> bounds,
                             int tag_base) {
  check_bounds(bounds, group, count);
  if (count == 0) return;
  ring_reduce_scatter_sum_impl(
      comm, data, dtype, group, tag_base, [bounds](int c) {
        return ChunkRange{bounds[static_cast<std::size_t>(c)],
                          bounds[static_cast<std::size_t>(c) + 1]};
      });
}

void ring_allgather(Comm& comm, std::byte* data, std::size_t count,
                    DType dtype, std::span<const int> group,
                    std::span<const std::size_t> bounds, int tag_base) {
  check_bounds(bounds, group, count);
  if (count == 0) return;
  ring_allgather_impl(comm, data, dtype, group, tag_base, [bounds](int c) {
    return ChunkRange{bounds[static_cast<std::size_t>(c)],
                      bounds[static_cast<std::size_t>(c) + 1]};
  });
}

void broadcast(Comm& comm, Tensor& tensor, std::span<const int> group,
               int root_index, int tag_base) {
  broadcast(comm, tensor.data(), tensor.nbytes(), group, root_index,
            tag_base);
}

}  // namespace adasum
