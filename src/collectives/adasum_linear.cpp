#include "collectives/adasum_linear.h"

#include <cstring>

#include "base/check.h"
#include "core/adasum.h"
#include "tensor/kernels.h"

namespace adasum {
namespace {

void combine_layerwise(const std::byte* a, const std::byte* b, std::byte* out,
                       std::size_t count, DType dtype,
                       std::span<const TensorSlice> slices) {
  const TensorSlice whole{"all", 0, count};
  const std::span<const TensorSlice> layers =
      slices.empty() ? std::span<const TensorSlice>{&whole, 1} : slices;
  const std::size_t elem = dtype_size(dtype);
  for (const TensorSlice& s : layers) {
    ADASUM_CHECK_LE(s.offset + s.count, count);
    const kernels::DotTriple t = kernels::dot_triple_bytes(
        a + s.offset * elem, b + s.offset * elem, s.count, dtype);
    const AdasumFactors f = adasum_factors(t);
    kernels::scaled_sum_bytes(a + s.offset * elem, f.ca, b + s.offset * elem,
                              f.cb, out + s.offset * elem, s.count, dtype);
  }
}

}  // namespace

void adasum_linear_allreduce(Comm& comm, std::byte* data, std::size_t count,
                             DType dtype, std::span<const TensorSlice> slices,
                             int tag_base) {
  const int p = comm.size();
  if (p == 1 || count == 0) return;
  const int rank = comm.rank();
  const std::size_t elem = dtype_size(dtype);
  const std::size_t bytes = count * elem;

  // Upstream pass: fold the accumulator through ranks 0 -> p-1.
  if (rank > 0) {
    const std::vector<std::byte> acc = comm.recv_bytes(rank - 1, tag_base);
    ADASUM_CHECK_EQ(acc.size(), bytes);
    combine_layerwise(acc.data(), data, data, count, dtype, slices);
  }
  if (rank < p - 1) {
    comm.send_bytes(rank + 1, {data, bytes}, tag_base);
    // Downstream pass: receive the final result.
    const std::vector<std::byte> result =
        comm.recv_bytes(rank + 1, tag_base + 1);
    ADASUM_CHECK_EQ(result.size(), bytes);
    std::memcpy(data, result.data(), bytes);
  }
  if (rank > 0) {
    comm.send_bytes(rank - 1, {data, bytes}, tag_base + 1);
  }
}

void adasum_linear_allreduce(Comm& comm, Tensor& tensor,
                             std::span<const TensorSlice> slices,
                             int tag_base) {
  adasum_linear_allreduce(comm, tensor.data(), tensor.size(), tensor.dtype(),
                          slices, tag_base);
}

}  // namespace adasum
