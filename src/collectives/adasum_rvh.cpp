#include "collectives/adasum_rvh.h"

#include <bit>
#include <cstring>
#include <vector>

#include "analysis/analyzer.h"
#include "base/check.h"
#include "collectives/compressed.h"
#include "comm/buffer_pool.h"
#include "comm/pipeline.h"
#include "core/adasum.h"
#include "tensor/kernels.h"
#include "tensor/parallel/pool.h"

namespace adasum {
namespace {

// One reduce-scatter level retained for the allgather unwind.
struct LevelRecord {
  int neighbor = 0;
  bool is_left = false;       // brank/dc even — left member of the pair
  std::size_t mid = 0;        // split point of the segment at this level
  std::size_t seg_count = 0;  // segment size BEFORE the split
  int tag = 0;
};

// Returns the intersection of [s.offset, s.offset+s.count) with
// [begin, end), as offsets relative to `begin`; count 0 if disjoint.
struct SliceLocal {
  std::size_t local_offset = 0;
  std::size_t count = 0;
};
SliceLocal intersect(const TensorSlice& s, std::size_t begin,
                     std::size_t end) {
  const std::size_t lo = std::max(s.offset, begin);
  const std::size_t hi = std::min(s.offset + s.count, end);
  if (hi <= lo) return {0, 0};
  return {lo - begin, hi - lo};
}

}  // namespace

// Zero-copy schedule: this rank's segment is always the contiguous range
// [seg_begin, seg_begin + seg_count) of the CALLER'S buffer, never a copy.
// Per reduce-scatter level only the neighbor's half is staged (into one
// pooled scratch that is reused at every level), the combiner writes straight
// into the caller's storage, and the allgather unwind receives each half
// directly at its final offset — so the whole collective performs no heap
// allocation at steady state and no trailing memcpy. The arithmetic and the
// message pattern are identical to the copy-based formulation (see
// adasum_rvh_reference.h, which tests hold bit-for-bit against this one).
void adasum_rvh_allreduce(Comm& comm, std::byte* data, std::size_t count,
                          DType dtype, std::span<const TensorSlice> slices,
                          int tag_base, std::span<const int> group,
                          const CompressionOptions& compression) {
  const int size =
      group.empty() ? comm.size() : static_cast<int>(group.size());
  if (size == 1) return;
  ADASUM_CHECK_MSG(std::has_single_bit(static_cast<unsigned>(size)),
                   "AdasumRVH requires a power-of-two group size");
  // Index of this rank within the participating group, and the map from
  // group index to world rank.
  const auto world_rank = [&](int idx) {
    return group.empty() ? idx : group[static_cast<std::size_t>(idx)];
  };

  // Whole payload as a single layer when no boundary table is given.
  const TensorSlice whole{"all", 0, count};
  const std::span<const TensorSlice> layers =
      slices.empty() ? std::span<const TensorSlice>{&whole, 1} : slices;
  const std::size_t num_layers = layers.size();
  const std::size_t elem = dtype_size(dtype);
  int rank = comm.rank();
  if (!group.empty()) {
    rank = -1;
    for (std::size_t i = 0; i < group.size(); ++i)
      if (group[i] == comm.rank()) rank = static_cast<int>(i);
    ADASUM_CHECK_MSG(rank >= 0, "calling rank must belong to the group");
  }
  // Chunk size for the bulk transfers (0 = monolithic single messages),
  // resolved through the transport: a zero-copy transport collapses the
  // stream to one monolithic view (there is no payload movement left to
  // overlap), so the analyzer declarations below and the actual transfers
  // agree by construction. The small dot-triple allreduce always travels
  // whole.
  const std::size_t chunk =
      comm.bulk_chunk_bytes(comm.pipeline().chunk_bytes_for(elem));
  // Wire compression for the bulk transfers (DESIGN.md §13): the halving
  // exchange ships compressed halves (the local copy dies with the send),
  // the allgather requantizes so every rank ends bit-identical, and the dot
  // triples below always run on decompressed values in double (§4.4.1).
  const CompressionOptions comp = resolve_compression(comm, compression, dtype);

#if ADASUM_ANALYZE
  // Declare the full expected message schedule up front, from the same
  // formulas the loops below execute: per level the half exchange
  // (tag_base + 8*level), the dot-triple allreduce over the 2d-subgroup
  // (+1) and the allgather unwind (+2). A drifted tag or neighbor
  // computation becomes an expected-vs-observed diff in the epoch report
  // instead of a hang. The declaration walks the same segment halving as the
  // execution so the per-transfer chunk counts match the pipelined streams.
  analysis::EpochGuard epoch(comm.analyzer(), comm.rank(), "adasum_rvh");
  if (epoch.declaring()) {
    analysis::EpochExpectation& ex = epoch.expect();
    // Bytes a transfer of n elements puts on the wire: compression shrinks
    // the chunk counts, and the same formula drives the actual streams.
    const auto wire = [&](std::size_t n) {
      return wire_transfer_bytes(n, elem, comp);
    };
    std::size_t dcl_count = count;  // segment size entering each level
    int lvl = 0;
    for (int d = 1; d < size; d <<= 1, ++lvl) {
      const bool left = ((rank / d) % 2) == 0;
      const int nb = world_rank(left ? rank + d : rank - d);
      const int tag = tag_base + 8 * lvl;
      const std::size_t dcl_mid = dcl_count / 2;
      const std::size_t kept = left ? dcl_mid : dcl_count - dcl_mid;
      const std::size_t sent = dcl_count - kept;
      // Halving exchange: this rank streams the complement and receives its
      // kept half; the allgather unwind mirrors the sizes.
      for (std::size_t c = chunk_messages(wire(sent), chunk); c > 0; --c)
        ex.send(nb, tag);
      for (std::size_t c = chunk_messages(wire(kept), chunk); c > 0; --c)
        ex.recv(nb, tag);
      const int d2 = 2 * d;
      std::vector<int> sub(static_cast<std::size_t>(d2));
      for (int i = 0; i < d2; ++i)
        sub[static_cast<std::size_t>(i)] = world_rank((rank / d2) * d2 + i);
      ex.allreduce_doubles(sub, comm.rank(), tag + 1);
      for (std::size_t c = chunk_messages(wire(kept), chunk); c > 0; --c)
        ex.send(nb, tag + 2);
      for (std::size_t c = chunk_messages(wire(sent), chunk); c > 0; --c)
        ex.recv(nb, tag + 2);
      dcl_count = kept;
    }
  }
#endif

  // Pooled scratch workspace, leased once per call: the incoming half (the
  // largest is ceil(count/2) elements at level 0), the per-layer dot-product
  // triples, the triple-allreduce subgroup, and the level records.
  const int levels = std::countr_zero(static_cast<unsigned>(size));
  BufferPool& pool = comm.pool();
  PooledBuffer half_buf(pool, ((count + 1) / 2) * elem);
  std::byte* const half = half_buf.data();
  PooledBuffer triples_buf(pool, 3 * num_layers * sizeof(double));
  const std::span<double> triples = triples_buf.as<double>(3 * num_layers);
  PooledBuffer subgroup_buf(pool, static_cast<std::size_t>(size) * sizeof(int));
  const std::span<int> subgroup_all =
      subgroup_buf.as<int>(static_cast<std::size_t>(size));
  PooledBuffer records_buf(pool,
                           static_cast<std::size_t>(levels) *
                               sizeof(LevelRecord));
  const std::span<LevelRecord> records =
      records_buf.as<LevelRecord>(static_cast<std::size_t>(levels));
  // Compressed-wire helper (inert when comp is off); the largest single
  // transfer is the level-0 half.
  WireCompressor wc(comm, dtype, comp, (count + 1) / 2, /*bulk_views=*/true);

  // Current segment of the logical vector owned by this rank, in place.
  std::size_t seg_begin = 0;  // global element offset of the segment
  std::size_t seg_count = count;

  int level = 0;
  for (int d = 1; d < size; d <<= 1, ++level) {
    const bool is_left = ((rank / d) % 2) == 0;
    const int neighbor = is_left ? rank + d : rank - d;
    const std::size_t mid = seg_count / 2;
    const int tag = tag_base + 8 * level;
    std::byte* const seg = data + seg_begin * elem;
    records[static_cast<std::size_t>(level)] =
        LevelRecord{neighbor, is_left, mid, seg_count, tag};

    // Exchange halves. Left keeps/combines the left half; right the right.
    // `a` is the left subgroup's slice, `b` the right subgroup's; whichever
    // belongs to this rank stays in the caller's buffer and receives the
    // combined result, the other is staged in `half`. The outgoing half is
    // streamed in chunks so the neighbor can overlap its dot passes with the
    // remaining transfers.
    // The outgoing half's local copy is dead after the send (its ownership
    // moves to the neighbor), so the compressed path ships a plain blob —
    // no requantize needed until the allgather.
    // On a zero-copy transport send_bulk publishes a VIEW of the caller's
    // buffer. That region stays untouched by this rank until the matching
    // unwind receive — which happens-after the neighbor released the view
    // (its combiner is sequenced before its unwind send) — so the span is
    // stable for as long as the neighbor reads it.
    const auto send_half = [&](std::byte* p, std::size_t n) {
      if (wc.active())
        wc.send(world_rank(neighbor), p, n, chunk, tag);
      else
        comm.send_bulk(world_rank(neighbor), {p, n * elem}, chunk, tag);
    };
    std::byte* own;
    if (is_left) {
      send_half(seg + mid * elem, seg_count - mid);
      own = seg;
      seg_count = mid;
    } else {
      send_half(seg, mid);
      own = seg + mid * elem;
      seg_begin += mid;
      seg_count = seg_count - mid;
    }
    const std::size_t seg_end = seg_begin + seg_count;
    // Where the neighbor's half actually lives while we reduce over it: the
    // pooled scratch on the eager path, the PEER's published span on a
    // zero-copy transport (the recv_bulk callback rebinds it). `a` is always
    // the left subgroup's slice, `b` the right's.
    const std::byte* theirs = half;
    const auto a_ptr = [&]() { return is_left ? own : theirs; };
    const auto b_ptr = [&]() { return is_left ? theirs : own; };

    // Receive the neighbor's half as a chunk stream (half[i] lines up with
    // segment-local element i), computing each layer's partial dot triple
    // (Algorithm 1 line 15) the moment the last element of its intersection
    // with the segment lands. Layers advance in ascending order over the
    // identical contiguous spans the monolithic path feeds the kernel, so
    // the accumulated doubles are bit-for-bit the same for every chunk size
    // — the pipelining only lets the dot of chunk i overlap the transfer of
    // chunk i+1. Layers disjoint from the segment flush immediately with
    // zero triples, exactly like the monolithic loop.
    std::size_t next_layer = 0;
    const auto flush_dots = [&](std::size_t received_elems) {
      const std::byte* const a = a_ptr();
      const std::byte* const b = b_ptr();
      // Advance past every layer whose intersection has fully landed.
      const std::size_t first = next_layer;
      while (next_layer < num_layers) {
        const SliceLocal loc =
            intersect(layers[next_layer], seg_begin, seg_end);
        if (loc.count > 0 && loc.local_offset + loc.count > received_elems)
          break;
        ++next_layer;
      }
      const auto dot_layer = [&](std::size_t l) {
        const SliceLocal loc = intersect(layers[l], seg_begin, seg_end);
        kernels::DotTriple t;
        if (loc.count > 0) {
          t = kernels::dot_triple_bytes(a + loc.local_offset * elem,
                                        b + loc.local_offset * elem, loc.count,
                                        dtype);
        }
        triples[3 * l + 0] = t.ab;
        triples[3 * l + 1] = t.aa;
        triples[3 * l + 2] = t.bb;
      };
      // Layer-level fan-out (DESIGN.md §17): the dot wrappers themselves stay
      // monolithic at every ADASUM_THREADS setting (tiling their double
      // accumulators would change the bits), so dot parallelism comes from
      // distributing WHOLE layers over the pool instead. Each layer is one
      // kernel call writing its own triples[3l..] slot — disjoint writes, the
      // per-layer accumulation order never changes, and the result is
      // bit-identical no matter which thread runs which layer.
      const std::size_t ready = next_layer - first;
      if (ready > 1 && parallel::enabled() &&
          seg_count * elem >= (std::size_t{1} << 20)) {
        parallel::for_tiles(ready, /*grain=*/1, /*quantum=*/1,
                            [&](std::size_t, std::size_t lb, std::size_t le) {
                              for (std::size_t i = lb; i < le; ++i)
                                dot_layer(first + i);
                            });
      } else {
        for (std::size_t l = first; l < next_layer; ++l) dot_layer(l);
      }
    };
    // Finishing sequence shared by both receive paths: complete the dot
    // products across the 2d-rank group (line 16-17), then apply the combiner
    // per layer straight into the caller's storage (line 18). `combine_layer`
    // performs one layer's ca*a + cb*b; the compressed path passes a fused
    // kernel that decodes its operand off the held wire blob. Elements the
    // boundary table does not cover keep this rank's own contribution (they
    // never occur when the layers tile the payload).
    const auto finish = [&](auto&& combine_layer) {
      ADASUM_CHECK_EQ(next_layer, num_layers);
      const int d2 = 2 * d;
      const int group_base = (rank / d2) * d2;
      const std::span<int> subgroup =
          subgroup_all.subspan(0, static_cast<std::size_t>(d2));
      for (int i = 0; i < d2; ++i)
        subgroup[static_cast<std::size_t>(i)] = world_rank(group_base + i);
      comm.allreduce_sum_doubles_inplace(triples, subgroup, tag + 1);
      for (std::size_t l = 0; l < num_layers; ++l) {
        const SliceLocal loc = intersect(layers[l], seg_begin, seg_end);
        if (loc.count == 0) continue;
        const kernels::DotTriple t{triples[3 * l + 0], triples[3 * l + 1],
                                   triples[3 * l + 2]};
        combine_layer(loc, adasum_factors(t));
      }
    };
    // The view (when one is live) must survive past the dot triples: the
    // combiner reads the peer's span (or wire blob) again after the
    // allreduce. `held` keeps the uncompressed view alive to the end of the
    // iteration, whose close releases it — unblocking the neighbor's fence;
    // recv_apply holds the compressed blob view for the callback's body the
    // same way.
    BulkRecv held;
    if (wc.active()) {
      // A compressed half decompresses after the full blob lands (the scale
      // sideband precedes the payload), so the dot passes run once over the
      // whole half; the wire stream itself stays chunked. The combiner then
      // re-decodes each layer's slice STRAIGHT OFF THE WIRE BYTES, fused
      // with the scaled sum (DESIGN.md §17): the second pass reads 1-4 bits
      // or 1 byte per element instead of a 4-byte decoded float, and writes
      // no staging copy. Bit contract: decompress_combine_f32 is exactly
      // decompress + scaled_sum on the same dispatch level, so the result
      // matches the two-pass formulation bit for bit.
      wc.recv_apply(
          world_rank(neighbor), seg_count, chunk, tag,
          [&](const std::byte* blob) {
            decompress_f32(blob, wc.options(),
                           {reinterpret_cast<float*>(half), seg_count});
            flush_dots(seg_count);
            float* const own_f = reinterpret_cast<float*>(own);
            finish([&](const SliceLocal& loc, const AdasumFactors& f) {
              // `own` holds the left slice (a) when this rank is left, the
              // right slice (b) otherwise; the decoded neighbor half takes
              // the remaining operand slot with its coefficient.
              decompress_combine_f32(
                  blob, wc.options(), seg_count, loc.local_offset,
                  {own_f + loc.local_offset, loc.count},
                  /*c_other=*/is_left ? f.ca : f.cb,
                  /*c_deq=*/is_left ? f.cb : f.ca,
                  /*deq_is_b=*/is_left,
                  {own_f + loc.local_offset, loc.count});
            });
          });
    } else {
      held = comm.recv_bulk(world_rank(neighbor), {half, seg_count * elem},
                            chunk, tag,
                            [&](const std::byte* base, std::size_t off,
                                std::size_t len) {
                              theirs = base;
                              flush_dots((off + len) / elem);
                            });
      const std::byte* const a = a_ptr();
      const std::byte* const b = b_ptr();
      finish([&](const SliceLocal& loc, const AdasumFactors& f) {
        kernels::scaled_sum_bytes(a + loc.local_offset * elem, f.ca,
                                  b + loc.local_offset * elem, f.cb,
                                  own + loc.local_offset * elem, loc.count,
                                  dtype);
      });
    }
  }

  // Allgather unwind (lines 22-24): send the combined segment, receive the
  // neighbor's half directly at its final offset in the caller's buffer,
  // both as chunk streams so consecutive levels' transfers interleave.
  // Compressed unwind: the sender requantizes (ships one blob, then decodes
  // it over its own copy), so partners hold bit-identical segments at every
  // level — and since the codec is deterministic, the blobs they then emit
  // upward are identical too, keeping the whole group consistent.
  for (int l = levels - 1; l >= 0; --l) {
    const LevelRecord& r = records[static_cast<std::size_t>(l)];
    if (wc.active())
      wc.send_requantize(world_rank(r.neighbor), data + seg_begin * elem,
                         seg_count, chunk, r.tag + 2);
    else
      comm.send_bulk(world_rank(r.neighbor),
                     {data + seg_begin * elem, seg_count * elem}, chunk,
                     r.tag + 2);
    std::byte* dest;
    std::size_t dest_count;
    if (r.is_left) {
      dest = data + (seg_begin + r.mid) * elem;
      dest_count = r.seg_count - r.mid;
    } else {
      dest = data + (seg_begin - r.mid) * elem;
      dest_count = r.mid;
      seg_begin -= r.mid;
    }
    if (wc.active()) {
      wc.recv_into(world_rank(r.neighbor), dest, dest_count, chunk, r.tag + 2);
    } else {
      // The landed segment is final output the caller reads much later, so
      // the zero-copy path deposits the peer's span with non-temporal
      // stores; the eager path already received straight into `dest`
      // (base == dest) and needs no copy at all.
      BulkRecv held = comm.recv_bulk(
          world_rank(r.neighbor), {dest, dest_count * elem}, chunk, r.tag + 2,
          [&](const std::byte* base, std::size_t off, std::size_t len) {
            if (base != dest)
              kernels::stream_copy_bytes(base + off, dest + off, len);
          });
    }
    seg_count = r.seg_count;
  }

  // Close the tail race: the last unwind views this rank published may still
  // be under the neighbor's memcpy. Past the fence the caller owns its
  // buffer again. (No-op on buffered transports.)
  comm.bulk_fence();

  ADASUM_CHECK_EQ(seg_begin, 0u);
  ADASUM_CHECK_EQ(seg_count, count);
}

void adasum_rvh_allreduce(Comm& comm, Tensor& tensor,
                          std::span<const TensorSlice> slices, int tag_base,
                          std::span<const int> group,
                          const CompressionOptions& compression) {
  adasum_rvh_allreduce(comm, tensor.data(), tensor.size(), tensor.dtype(),
                       slices, tag_base, group, compression);
}

}  // namespace adasum
