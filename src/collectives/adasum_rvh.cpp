#include "collectives/adasum_rvh.h"

#include <bit>
#include <cstring>
#include <vector>

#include "base/check.h"
#include "core/adasum.h"
#include "tensor/kernels.h"

namespace adasum {
namespace {

// One reduce-scatter level retained for the allgather unwind.
struct LevelRecord {
  int neighbor = 0;
  bool is_left = false;     // brank/dc even — left member of the pair
  std::size_t mid = 0;      // split point of the segment at this level
  std::size_t seg_count = 0;  // segment size BEFORE the split
  int tag = 0;
};

// Returns the intersection of [s.offset, s.offset+s.count) with
// [begin, end), as offsets relative to `begin`; count 0 if disjoint.
struct SliceLocal {
  std::size_t local_offset = 0;
  std::size_t count = 0;
};
SliceLocal intersect(const TensorSlice& s, std::size_t begin,
                     std::size_t end) {
  const std::size_t lo = std::max(s.offset, begin);
  const std::size_t hi = std::min(s.offset + s.count, end);
  if (hi <= lo) return {0, 0};
  return {lo - begin, hi - lo};
}

}  // namespace

void adasum_rvh_allreduce(Comm& comm, std::byte* data, std::size_t count,
                          DType dtype, std::span<const TensorSlice> slices,
                          int tag_base, std::span<const int> group) {
  const int size =
      group.empty() ? comm.size() : static_cast<int>(group.size());
  if (size == 1) return;
  ADASUM_CHECK_MSG(std::has_single_bit(static_cast<unsigned>(size)),
                   "AdasumRVH requires a power-of-two group size");
  // Index of this rank within the participating group, and the map from
  // group index to world rank.
  const auto world_rank = [&](int idx) {
    return group.empty() ? idx : group[static_cast<std::size_t>(idx)];
  };

  // Whole payload as a single layer when no boundary table is given.
  const TensorSlice whole{"all", 0, count};
  const std::span<const TensorSlice> layers =
      slices.empty() ? std::span<const TensorSlice>{&whole, 1} : slices;
  const std::size_t num_layers = layers.size();
  const std::size_t elem = dtype_size(dtype);
  int rank = comm.rank();
  if (!group.empty()) {
    rank = -1;
    for (std::size_t i = 0; i < group.size(); ++i)
      if (group[i] == comm.rank()) rank = static_cast<int>(i);
    ADASUM_CHECK_MSG(rank >= 0, "calling rank must belong to the group");
  }

  // Current segment of the logical vector owned by this rank.
  std::vector<std::byte> seg(data, data + count * elem);
  std::size_t seg_begin = 0;  // global element offset of the segment
  std::size_t seg_count = count;

  std::vector<LevelRecord> records;
  std::vector<int> subgroup;
  std::vector<double> triples(3 * num_layers);

  int level = 0;
  for (int d = 1; d < size; d <<= 1, ++level) {
    const bool is_left = ((rank / d) % 2) == 0;
    const int neighbor = is_left ? rank + d : rank - d;
    const std::size_t mid = seg_count / 2;
    const int tag = tag_base + 8 * level;

    // Exchange halves. Left keeps/combines the left half; right the right.
    std::vector<std::byte> a, b;
    if (is_left) {
      comm.send_bytes(world_rank(neighbor),
                      {seg.data() + mid * elem, (seg_count - mid) * elem},
                      tag);
      a.assign(seg.data(), seg.data() + mid * elem);
      b = comm.recv_bytes(world_rank(neighbor), tag);
      ADASUM_CHECK_EQ(b.size(), mid * elem);
    } else {
      comm.send_bytes(world_rank(neighbor), {seg.data(), mid * elem}, tag);
      a = comm.recv_bytes(world_rank(neighbor), tag);
      ADASUM_CHECK_EQ(a.size(), (seg_count - mid) * elem);
      b.assign(seg.data() + mid * elem, seg.data() + seg_count * elem);
      seg_begin += mid;
    }
    records.push_back(LevelRecord{neighbor, is_left, mid, seg_count, tag});
    seg_count = is_left ? mid : seg_count - mid;
    const std::size_t seg_end = seg_begin + seg_count;

    // Partial per-layer dot products over this rank's slice of (a, b)
    // (Algorithm 1 line 15).
    for (std::size_t l = 0; l < num_layers; ++l) {
      const SliceLocal loc = intersect(layers[l], seg_begin, seg_end);
      kernels::DotTriple t;
      if (loc.count > 0) {
        t = kernels::dot_triple_bytes(a.data() + loc.local_offset * elem,
                                      b.data() + loc.local_offset * elem,
                                      loc.count, dtype);
      }
      triples[3 * l + 0] = t.ab;
      triples[3 * l + 1] = t.aa;
      triples[3 * l + 2] = t.bb;
    }

    // Finish the dot products across the 2d-rank group (line 16-17).
    const int d2 = 2 * d;
    subgroup.clear();
    const int group_base = (rank / d2) * d2;
    for (int i = 0; i < d2; ++i) subgroup.push_back(world_rank(group_base + i));
    const std::vector<double> full = comm.allreduce_sum_doubles(
        triples, subgroup, tag + 1);

    // Apply the combiner per layer on the local slice (line 18).
    for (std::size_t l = 0; l < num_layers; ++l) {
      const SliceLocal loc = intersect(layers[l], seg_begin, seg_end);
      if (loc.count == 0) continue;
      const kernels::DotTriple t{full[3 * l + 0], full[3 * l + 1],
                                 full[3 * l + 2]};
      const AdasumFactors f = adasum_factors(t);
      kernels::scaled_sum_bytes(a.data() + loc.local_offset * elem, f.ca,
                                b.data() + loc.local_offset * elem, f.cb,
                                a.data() + loc.local_offset * elem, loc.count,
                                dtype);
    }
    // `a` now holds the combined segment (we wrote the result into it; for
    // right ranks, slices outside every layer keep a's data — impossible,
    // layers tile the payload in practice; to be safe fall back to copy).
    seg = std::move(a);
  }

  // Allgather unwind (lines 22-24): reassemble halves in reverse order.
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    comm.send_bytes(world_rank(it->neighbor), {seg.data(), seg.size()},
                    it->tag + 2);
    std::vector<std::byte> theirs =
        comm.recv_bytes(world_rank(it->neighbor), it->tag + 2);
    std::vector<std::byte> merged;
    merged.reserve(seg.size() + theirs.size());
    if (it->is_left) {
      merged.insert(merged.end(), seg.begin(), seg.end());
      merged.insert(merged.end(), theirs.begin(), theirs.end());
    } else {
      merged.insert(merged.end(), theirs.begin(), theirs.end());
      merged.insert(merged.end(), seg.begin(), seg.end());
      seg_begin -= it->mid;
    }
    ADASUM_CHECK_EQ(merged.size(), it->seg_count * elem);
    seg = std::move(merged);
  }

  ADASUM_CHECK_EQ(seg.size(), count * elem);
  std::memcpy(data, seg.data(), seg.size());
}

void adasum_rvh_allreduce(Comm& comm, Tensor& tensor,
                          std::span<const TensorSlice> slices, int tag_base,
                          std::span<const int> group) {
  adasum_rvh_allreduce(comm, tensor.data(), tensor.size(), tensor.dtype(),
                       slices, tag_base, group);
}

}  // namespace adasum
