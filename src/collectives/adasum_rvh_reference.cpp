#include "collectives/adasum_rvh_reference.h"

#include <bit>
#include <cstring>
#include <vector>

#include "base/check.h"
#include "core/adasum.h"
#include "tensor/kernels.h"

namespace adasum {
namespace {

struct LevelRecord {
  int neighbor = 0;
  bool is_left = false;
  std::size_t mid = 0;
  std::size_t seg_count = 0;
  int tag = 0;
};

struct SliceLocal {
  std::size_t local_offset = 0;
  std::size_t count = 0;
};
SliceLocal intersect(const TensorSlice& s, std::size_t begin,
                     std::size_t end) {
  const std::size_t lo = std::max(s.offset, begin);
  const std::size_t hi = std::min(s.offset + s.count, end);
  if (hi <= lo) return {0, 0};
  return {lo - begin, hi - lo};
}

// The seed's send path: allocate a fresh payload vector per message instead
// of leasing one from the pool, so this baseline keeps the allocation
// behaviour the zero-copy work removed.
void send_copy(Comm& comm, int dst, const std::byte* p, std::size_t n,
               int tag) {
  comm.send_bytes_owned(dst, std::vector<std::byte>(p, p + n), tag);
}

}  // namespace

void adasum_rvh_allreduce_reference(Comm& comm, std::byte* data,
                                    std::size_t count, DType dtype,
                                    std::span<const TensorSlice> slices,
                                    int tag_base,
                                    std::span<const int> group) {
  const int size =
      group.empty() ? comm.size() : static_cast<int>(group.size());
  if (size == 1) return;
  ADASUM_CHECK_MSG(std::has_single_bit(static_cast<unsigned>(size)),
                   "AdasumRVH requires a power-of-two group size");
  const auto world_rank = [&](int idx) {
    return group.empty() ? idx : group[static_cast<std::size_t>(idx)];
  };

  const TensorSlice whole{"all", 0, count};
  const std::span<const TensorSlice> layers =
      slices.empty() ? std::span<const TensorSlice>{&whole, 1} : slices;
  const std::size_t num_layers = layers.size();
  const std::size_t elem = dtype_size(dtype);
  int rank = comm.rank();
  if (!group.empty()) {
    rank = -1;
    for (std::size_t i = 0; i < group.size(); ++i)
      if (group[i] == comm.rank()) rank = static_cast<int>(i);
    ADASUM_CHECK_MSG(rank >= 0, "calling rank must belong to the group");
  }

  // Private working copy of the whole payload (the copy the in-place path
  // eliminates).
  std::vector<std::byte> seg(data, data + count * elem);
  std::size_t seg_begin = 0;
  std::size_t seg_count = count;

  std::vector<LevelRecord> records;
  std::vector<double> triples(3 * num_layers);
  std::vector<int> subgroup;

  int level = 0;
  for (int d = 1; d < size; d <<= 1, ++level) {
    const bool is_left = ((rank / d) % 2) == 0;
    const int neighbor = is_left ? rank + d : rank - d;
    const std::size_t mid = seg_count / 2;
    const int tag = tag_base + 8 * level;

    // Exchange halves into per-level vectors: a = the left subgroup's slice,
    // b = the right subgroup's.
    std::vector<std::byte> a, b;
    if (is_left) {
      send_copy(comm, world_rank(neighbor), seg.data() + mid * elem,
                (seg_count - mid) * elem, tag);
      a.assign(seg.data(), seg.data() + mid * elem);
      b = comm.recv_bytes(world_rank(neighbor), tag);
      ADASUM_CHECK_EQ(b.size(), mid * elem);
    } else {
      send_copy(comm, world_rank(neighbor), seg.data(), mid * elem, tag);
      a = comm.recv_bytes(world_rank(neighbor), tag);
      ADASUM_CHECK_EQ(a.size(), (seg_count - mid) * elem);
      b.assign(seg.data() + mid * elem, seg.data() + seg_count * elem);
      seg_begin += mid;
    }
    records.push_back(LevelRecord{neighbor, is_left, mid, seg_count, tag});
    seg_count = is_left ? mid : seg_count - mid;
    const std::size_t seg_end = seg_begin + seg_count;

    for (std::size_t l = 0; l < num_layers; ++l) {
      const SliceLocal loc = intersect(layers[l], seg_begin, seg_end);
      kernels::DotTriple t;
      if (loc.count > 0) {
        t = kernels::dot_triple_bytes(a.data() + loc.local_offset * elem,
                                      b.data() + loc.local_offset * elem,
                                      loc.count, dtype);
      }
      triples[3 * l + 0] = t.ab;
      triples[3 * l + 1] = t.aa;
      triples[3 * l + 2] = t.bb;
    }

    const int d2 = 2 * d;
    subgroup.clear();
    const int group_base = (rank / d2) * d2;
    for (int i = 0; i < d2; ++i) subgroup.push_back(world_rank(group_base + i));
    const std::vector<double> full =
        comm.allreduce_sum_doubles(triples, subgroup, tag + 1);

    // Combine into this rank's own half so elements outside every layer keep
    // the local contribution — the same convention as the in-place path.
    std::vector<std::byte>& own = is_left ? a : b;
    for (std::size_t l = 0; l < num_layers; ++l) {
      const SliceLocal loc = intersect(layers[l], seg_begin, seg_end);
      if (loc.count == 0) continue;
      const kernels::DotTriple t{full[3 * l + 0], full[3 * l + 1],
                                 full[3 * l + 2]};
      const AdasumFactors f = adasum_factors(t);
      kernels::scaled_sum_bytes(a.data() + loc.local_offset * elem, f.ca,
                                b.data() + loc.local_offset * elem, f.cb,
                                own.data() + loc.local_offset * elem,
                                loc.count, dtype);
    }
    seg = std::move(own);
  }

  // Allgather unwind with a merged rebuild per level.
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    send_copy(comm, world_rank(it->neighbor), seg.data(), seg.size(),
              it->tag + 2);
    std::vector<std::byte> theirs =
        comm.recv_bytes(world_rank(it->neighbor), it->tag + 2);
    std::vector<std::byte> merged;
    merged.reserve(seg.size() + theirs.size());
    if (it->is_left) {
      merged.insert(merged.end(), seg.begin(), seg.end());
      merged.insert(merged.end(), theirs.begin(), theirs.end());
    } else {
      merged.insert(merged.end(), theirs.begin(), theirs.end());
      merged.insert(merged.end(), seg.begin(), seg.end());
      seg_begin -= it->mid;
    }
    ADASUM_CHECK_EQ(merged.size(), it->seg_count * elem);
    seg = std::move(merged);
  }

  ADASUM_CHECK_EQ(seg.size(), count * elem);
  std::memcpy(data, seg.data(), seg.size());
}

void adasum_rvh_allreduce_reference(Comm& comm, Tensor& tensor,
                                    std::span<const TensorSlice> slices,
                                    int tag_base, std::span<const int> group) {
  adasum_rvh_allreduce_reference(comm, tensor.data(), tensor.size(),
                                 tensor.dtype(), slices, tag_base, group);
}

}  // namespace adasum
