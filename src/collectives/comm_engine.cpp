#include "collectives/comm_engine.h"

#include "base/check.h"
#include "verify/mutation.h"

namespace adasum {

CommEngine::CommEngine(Comm& comm, std::size_t capacity)
    : comm_(comm), slots_(capacity) {
  ADASUM_CHECK_GE(capacity, 1u);
  thread_ = sync::thread([this]() { worker(); });
}

CommEngine::~CommEngine() {
  // On an exceptional unwind the worker may be blocked on a peer that will
  // never answer (the exception has not reached World::run yet, so no abort
  // has been requested). Issue the abort the run would issue anyway, so the
  // join below cannot deadlock. A clean destruction just drains the queue.
  if (std::uncaught_exceptions() > 0) comm_.request_abort();
  {
    sync::lock_guard<sync::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  thread_.join();
}

CommEngine::Ticket CommEngine::submit_allreduce(Tensor& tensor,
                                               const AllreduceOptions& options,
                                               int tag_base) {
  Ticket ticket;
  {
    sync::lock_guard<sync::mutex> lock(mutex_);
    ADASUM_CHECK_MSG(!stop_, "submit_allreduce on a stopping CommEngine");
    ADASUM_CHECK_MSG(submitted_ - consumed_ < slots_.size(),
                     "CommEngine ring full: wait() earlier tickets first");
    Op& op = slots_[submitted_ % slots_.size()];
    op.tensor = &tensor;
    op.options = &options;
    op.tag_base = tag_base;
    op.result = ResilientResult{};
    op.error = nullptr;
    ticket = submitted_++;
  }
  work_cv_.notify_one();
  return ticket;
}

ResilientResult CommEngine::wait(Ticket ticket) {
  sync::unique_lock<sync::mutex> lock(mutex_);
  ADASUM_CHECK_LT(ticket, submitted_);
  done_cv_.wait(lock, [&]() ADASUM_NO_THREAD_SAFETY_ANALYSIS {
    return completed_ > ticket;
  });
  if (consumed_ <= ticket) consumed_ = ticket + 1;
  Op& op = slots_[ticket % slots_.size()];
  if (op.error != nullptr) {
    std::exception_ptr error = op.error;
    op.error = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
  return op.result;
}

void CommEngine::wait_all() {
  sync::unique_lock<sync::mutex> lock(mutex_);
  const std::uint64_t target = submitted_;
  done_cv_.wait(lock, [&]() ADASUM_NO_THREAD_SAFETY_ANALYSIS {
    return completed_ >= target;
  });
  std::exception_ptr first;
  for (std::uint64_t t = consumed_; t < target; ++t) {
    Op& op = slots_[t % slots_.size()];
    if (first == nullptr && op.error != nullptr) first = op.error;
    op.error = nullptr;
  }
  consumed_ = target;
  lock.unlock();
  if (first != nullptr) std::rethrow_exception(first);
}

std::uint64_t CommEngine::submitted() const {
  sync::lock_guard<sync::mutex> lock(mutex_);
  return submitted_;
}

void CommEngine::worker() {
  for (;;) {
    sync::unique_lock<sync::mutex> lock(mutex_);
    work_cv_.wait(lock, [&]() ADASUM_NO_THREAD_SAFETY_ANALYSIS {
      return stop_ || completed_ < submitted_;
    });
    if (completed_ == submitted_) return;  // stop_ && drained
    Op& op = slots_[completed_ % slots_.size()];
    if (killed_) {
      // The rank died mid-queue: remaining ops are not executed (a killed
      // rank stops participating) but their waiters still unblock.
      op.error = std::make_exception_ptr(RankKilled(comm_.rank()));
      ++completed_;
      done_cv_.notify_all();
      continue;
    }
    lock.unlock();
    ResilientResult result;
    std::exception_ptr error;
    bool rank_killed = false;
    try {
      result = resilient_allreduce(comm_, *op.tensor, *op.options,
                                   op.tag_base);
    } catch (const RankKilled&) {
      error = std::current_exception();
      rank_killed = true;
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (rank_killed) killed_ = true;
    op.result = result;
    op.error = error;
    ++completed_;
    // The completion notify is what unblocks wait()/wait_all(). The
    // kEngineDropDoneNotify mutation drops exactly this call; the model
    // checker's engine kernel then reports the waiter's deadlock. (The
    // killed-branch notify above is deliberately left intact.)
    if (!ADASUM_VERIFY_MUTATED(kEngineDropDoneNotify)) done_cv_.notify_all();
  }
}

}  // namespace adasum
