// Compressed wire transfers for the collectives (DESIGN.md §13).
//
// Composition rule: compression applies to TRANSFERRED payload bytes only.
// Every reduction — the Adasum dot triples, the elementwise sums, the local
// combiners — runs on decompressed fp32 values with double accumulation
// exactly as before (§4.4.1); the codec never touches resident data except
// through the explicit requantize step below. Chunk pipelining composes
// transparently: a compressed transfer is a normal chunk stream over the
// (smaller) wire blob, and checksums/fault injection see plain byte
// messages.
//
// Replica consistency (the reason requantize exists): a lossy wire would let
// a sender keep exact values while receivers hold approximations, and ranks
// would silently diverge. Two mechanisms prevent that:
//  * requantize-on-allgather — the sender compresses its segment ONCE,
//    ships the blob, and decompresses that same blob back over its own copy,
//    so sender and receivers hold bit-identical floats;
//  * determinism — the codec is a pure function of (bytes, options), so two
//    ranks holding identical segments (the RVH unwind invariant) emit
//    identical blobs for their partners. The ring allgather instead forwards
//    each owner's blob VERBATIM hop to hop, so every rank decodes the same
//    stream. tests/compress_test.cpp asserts the resulting cross-rank
//    bit-equality for every schedule.
#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "comm/buffer_pool.h"
#include "comm/world.h"
#include "tensor/compress/compress.h"
#include "tensor/dtype.h"

namespace adasum {

// Resolves a per-call request against the world default: kAuto defers to
// comm.compression(), and non-fp32 payloads always transfer uncompressed
// (the codec is fp32-only).
inline CompressionOptions resolve_compression(
    const Comm& comm, const CompressionOptions& requested, DType dtype) {
  CompressionOptions r = requested;
  if (r.mode == CompressionMode::kAuto) r = comm.compression();
  if (r.mode == CompressionMode::kAuto) r.mode = CompressionMode::kNone;
  if (dtype != DType::kFloat32) r.mode = CompressionMode::kNone;
  return r;
}

// Bytes a transfer of `elems` elements of `elem_size` puts on the wire under
// `opts` — the single formula shared by the transfers, the EpochGuard
// schedule declarations and the cost model, so a drift shows up as an
// analyzer diff rather than a hang.
inline std::size_t wire_transfer_bytes(std::size_t elems,
                                       std::size_t elem_size,
                                       const CompressionOptions& opts) {
  return opts.active() ? compressed_wire_bytes(elems, opts)
                       : elems * elem_size;
}

// Pooled compress/transfer helper, leased once per collective call (zero
// steady-state allocation, DESIGN.md §8). Two blob slots sized for the
// largest transfer: the ring allgather holds a received blob in one slot
// while the next lands in the other; every other schedule uses slot 0.
// Inactive options make active() false and the collectives keep their
// uncompressed code paths byte-identical to before.
class WireCompressor {
 public:
  // `max_elems` bounds the largest single transfer of the collective.
  // `bulk_views` opts the one-shot transfers (send / send_requantize /
  // recv_into) into the transport's bulk path: on a zero-copy transport the
  // blob travels as a VIEW of the sender's slot and the receiver decodes
  // straight off the peer's published span. Only safe for schedules where
  // every publish is consumed by a receive the publisher's next transfer
  // already waits on transitively (the RVH pairwise exchanges); the ring's
  // verbatim blob forwarding reuses slots on a cycle where the required
  // fence would deadlock, so it stays on the default eager path.
  WireCompressor(Comm& comm, DType dtype, const CompressionOptions& opts,
                 std::size_t max_elems, bool bulk_views = false);
  ~WireCompressor();

  bool active() const { return opts_.active(); }
  const CompressionOptions& options() const { return opts_; }
  std::size_t wire_bytes(std::size_t elems) const {
    return compressed_wire_bytes(elems, opts_);
  }

  // ---- low-level blob ops (the ring allgather composes these) ------------
  void encode(int slot, const std::byte* data, std::size_t elems);
  void decode(int slot, std::byte* dest, std::size_t elems);
  void send_blob(int dst, int slot, std::size_t elems, std::size_t chunk,
                 int tag);
  void recv_blob(int src, int slot, std::size_t elems, std::size_t chunk,
                 int tag);

  // ---- one-shot transfers ------------------------------------------------
  // Compress `data` and stream the blob. For payloads whose local copy is
  // dead after the send (reduce-scatter halves — ownership moves to the
  // receiver).
  void send(int dst, const std::byte* data, std::size_t elems,
            std::size_t chunk, int tag);
  // Compress, stream, then decompress the blob back over `data`: afterwards
  // the local copy is bit-identical to what the receiver decodes. For
  // allgather sends, where both sides keep the segment.
  void send_requantize(int dst, std::byte* data, std::size_t elems,
                       std::size_t chunk, int tag);
  // Receive a blob and decompress it into `dest` (elems floats). In bulk
  // mode on a zero-copy transport the decode reads the peer's published
  // blob span directly, with no staging copy.
  void recv_into(int src, std::byte* dest, std::size_t elems,
                 std::size_t chunk, int tag);

  // Receive a blob and hand the raw wire bytes to `fn(blob)` while the
  // (possibly zero-copy) view is still held: the fused decode-reduce paths
  // (decompress_add_f32 / decompress_combine_f32, DESIGN.md §17) read the
  // compressed stream in place instead of staging a decoded copy. `fn` may
  // read the blob for its whole body — including across nested collective
  // calls, matching the uncompressed paths that hold their payload views
  // across the subgroup dot allreduce.
  template <class Fn>
  void recv_apply(int src, std::size_t elems, std::size_t chunk, int tag,
                  Fn&& fn) {
    if (bulk_views_) {
      const std::byte* blob = blobs_[0]->data();
      BulkRecv held = comm_.recv_bulk(
          src, blobs_[0]->bytes(wire_bytes(elems)), chunk, tag,
          [&](const std::byte* base, std::size_t, std::size_t) {
            blob = base;
          });
      fn(blob);
      return;
    }
    recv_blob(src, 0, elems, chunk, tag);
    fn(static_cast<const std::byte*>(blobs_[0]->data()));
  }

 private:
  // Bulk-path blob send out of slot 0, recording the outstanding view.
  void send_bulk_blob(int dst, std::size_t elems, std::size_t chunk, int tag);

  Comm& comm_;
  CompressionOptions opts_;
  bool bulk_views_ = false;
  // A blob view published to a peer may still be under its decode; slot 0
  // must not be rewritten (encode) until it retires. Cleared by the fence in
  // encode() and by the destructor's safety fence.
  bool blob_view_out_ = false;
  // Engaged only when active: an inactive compressor must not lease from the
  // pool at all — even a zero-byte lease would pull a warmed buffer off the
  // shared free list and perturb concurrent ranks' capacity hits (the
  // zero-warm-allocation chaos gates measure exactly this).
  std::optional<PooledBuffer> blobs_[2];
};

}  // namespace adasum
