// Linear (chain-order) Adasum allreduce (§4.2.3's "ring" variant).
//
// Applies the pairwise operator in rank order:
//   acc = Adasum(...Adasum(Adasum(g0, g1), g2)..., g_{p-1})
// Rank i receives the running accumulator from rank i-1, combines it with
// its own gradient locally (it holds both full vectors, so the dot products
// need no extra communication), and forwards; the last rank broadcasts the
// result back down the chain. The paper implemented an optimized chunked
// version of this ordering and found it slower than AdasumRVH on their
// hardware; we keep the simple chain as the numerically-identical reference
// and price the optimized schedule in the cost model.
#pragma once

#include <span>

#include "comm/world.h"
#include "tensor/fusion.h"
#include "tensor/tensor.h"

namespace adasum {

void adasum_linear_allreduce(Comm& comm, std::byte* data, std::size_t count,
                             DType dtype,
                             std::span<const TensorSlice> slices = {},
                             int tag_base = 0);

void adasum_linear_allreduce(Comm& comm, Tensor& tensor,
                             std::span<const TensorSlice> slices = {},
                             int tag_base = 0);

}  // namespace adasum
