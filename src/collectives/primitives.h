// Collective primitives below allreduce: broadcast, ring reduce-scatter and
// ring allgather over a contiguous rank group.
//
// These are the phases the hierarchical allreduce (§4.2.2) composes — NCCL
// reduce-scatter inside the node, cross-node Adasum, NCCL allgather — and
// they are exposed here as standalone collectives with the same chunking
// convention: chunk c of a count-n payload over a p-rank group covers
// [n*c/p, n*(c+1)/p), and after the reduce-scatter group-local rank j owns
// the fully reduced chunk (j+1) % p.
#pragma once

#include <cstddef>
#include <span>

#include "comm/world.h"
#include "tensor/tensor.h"

namespace adasum {

// Element range of chunk `c` of a `count`-element payload split `p` ways.
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};
ChunkRange chunk_range(std::size_t count, int p, int c);

// The chunk index rank j owns after a ring reduce-scatter over p ranks.
inline int owned_chunk_after_reduce_scatter(int local_rank, int p) {
  return p > 1 ? (local_rank + 1) % p : 0;
}

// Broadcast `data` from `group[root_index]` to every rank in `group`
// (binomial tree). All group members call with the same arguments; non-root
// ranks receive into `data`.
void broadcast(Comm& comm, std::byte* data, std::size_t bytes,
               std::span<const int> group, int root_index, int tag_base = 0);

// Ring reduce-scatter (elementwise sum) over a rank group: after the call,
// the owned chunk of each rank holds the group-wide sum; other chunks hold
// partial garbage. Group ranks may be any distinct world ranks.
void ring_reduce_scatter_sum(Comm& comm, std::byte* data, std::size_t count,
                             DType dtype, std::span<const int> group,
                             int tag_base = 0);

// Ring allgather over a rank group: each rank contributes its owned chunk
// (per owned_chunk_after_reduce_scatter) and receives all others.
void ring_allgather(Comm& comm, std::byte* data, std::size_t count,
                    DType dtype, std::span<const int> group,
                    int tag_base = 0);

// Explicit chunk-boundary variants: `bounds` is an ascending offset table of
// group.size()+1 element offsets (bounds.front() == 0, bounds.back() ==
// count); chunk c covers [bounds[c], bounds[c+1]). The functions above are
// the bounds == chunk_range(count, p, ·) special case and run the identical
// schedule. The topology-aware hierarchical allreduce (hierarchical.h) uses
// these to keep a RAGGED last node's local phase aligned to the world-wide
// shard grid, so its cross-node groups reduce matching element ranges.
void ring_reduce_scatter_sum(Comm& comm, std::byte* data, std::size_t count,
                             DType dtype, std::span<const int> group,
                             std::span<const std::size_t> bounds,
                             int tag_base = 0);
void ring_allgather(Comm& comm, std::byte* data, std::size_t count,
                    DType dtype, std::span<const int> group,
                    std::span<const std::size_t> bounds, int tag_base = 0);

// Tensor conveniences.
void broadcast(Comm& comm, Tensor& tensor, std::span<const int> group,
               int root_index, int tag_base = 0);

}  // namespace adasum
