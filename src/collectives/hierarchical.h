// Hierarchical Adasum allreduce (paper §4.2.2).
//
// When HOROVOD_HIERARCHICAL_ALLREDUCE is set, Horovod reduces in three
// phases: (1) an NCCL reduce-scatter among the GPUs inside each node, (2) a
// cross-node AdasumRVH on each GPU's shard (GPU j of every node forms one
// cross-node group), and (3) an NCCL allgather inside the node. The local
// phase averages the node's gradients — the node acts as one logical Adasum
// worker with a larger effective microbatch — and the Adasum operator is
// applied only across nodes, matching Horovod's semantics.
//
// Note on dot-product scope: the cross-node Adasum computes its dot products
// within each shard (further split by any layer boundaries that intersect
// the shard), not across the whole vector — shard boundaries effectively act
// as additional layer boundaries. This mirrors the shipped Horovod behavior,
// where the MPI Adasum op sees only the buffer each GPU owns after the local
// reduce-scatter.
#pragma once

#include <span>

#include "comm/world.h"
#include "tensor/fusion.h"
#include "tensor/tensor.h"

namespace adasum {

// In-place hierarchical allreduce. `ranks_per_node` consecutive ranks form a
// node; world size must be a multiple of it and the node count a power of
// two. When `use_adasum` is false the cross-node phase is a plain sum-RVH
// (the baseline hierarchical allreduce of §5.1.1); the local phase averages
// either way only when `use_adasum` is true (sum mode matches plain sum).
// `compression` applies to the CROSS-NODE phase only — that is the slow
// inter-node wire the codec exists for; the intra-node reduce-scatter and
// allgather model fast local links and stay exact (DESIGN.md §13).
void hierarchical_allreduce(Comm& comm, std::byte* data, std::size_t count,
                            DType dtype, int ranks_per_node, bool use_adasum,
                            std::span<const TensorSlice> slices = {},
                            int tag_base = 0,
                            const CompressionOptions& compression = {});

void hierarchical_allreduce(Comm& comm, Tensor& tensor, int ranks_per_node,
                            bool use_adasum,
                            std::span<const TensorSlice> slices = {},
                            int tag_base = 0,
                            const CompressionOptions& compression = {});

}  // namespace adasum
