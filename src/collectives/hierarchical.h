// Hierarchical Adasum allreduce (paper §4.2.2), topology-aware.
//
// When HOROVOD_HIERARCHICAL_ALLREDUCE is set, Horovod reduces in three
// phases: (1) an NCCL reduce-scatter among the GPUs inside each node, (2) a
// cross-node AdasumRVH on each GPU's shard (GPU j of every node forms one
// cross-node group), and (3) an NCCL allgather inside the node. The local
// phase averages the node's gradients — the node acts as one logical Adasum
// worker with a larger effective microbatch — and the Adasum operator is
// applied only across nodes, matching Horovod's semantics.
//
// Group formation is no longer fixed-arity. The world splits into nodes of
// `ranks_per_node` consecutive ranks with a possibly RAGGED last node (world
// need not be a multiple), and the cross-node phase handles ANY node count:
// a non-power-of-two group runs the standard fold — the extra nodes
// pre-combine pairwise into the power-of-two core before the RVH recursion
// and receive the result afterwards. The local phases of a ragged node use
// shard-aligned chunk boundaries (primitives.h bounds variants) so every
// node partitions the payload on the same world-wide `ranks_per_node`-way
// shard grid and the per-shard cross groups reduce matching element ranges;
// a ragged rank simply owns several shards and runs their cross collectives
// back to back (the groups are channel-disjoint, so they cannot interfere).
// The overloads taking a Topology derive the grouping from modeled link
// speed — `Topology::group_size_by_link_speed` — instead of a caller-fixed
// arity: grouping collapses to flat when the local fabric is no faster than
// the network.
//
// Note on dot-product scope: the cross-node Adasum computes its dot products
// within each shard (further split by any layer boundaries that intersect
// the shard), not across the whole vector — shard boundaries effectively act
// as additional layer boundaries. This mirrors the shipped Horovod behavior,
// where the MPI Adasum op sees only the buffer each GPU owns after the local
// reduce-scatter.
#pragma once

#include <span>

#include "comm/topology.h"
#include "comm/world.h"
#include "tensor/fusion.h"
#include "tensor/tensor.h"

namespace adasum {

// In-place hierarchical allreduce. `ranks_per_node` consecutive ranks form a
// node; any world size works (the last node may be ragged and the node count
// need not be a power of two — see the header comment). When `use_adasum` is
// false the cross-node phase is a plain sum-RVH (the baseline hierarchical
// allreduce of §5.1.1); the local phase averages either way only when
// `use_adasum` is true (sum mode matches plain sum). `compression` applies
// to the CROSS-NODE phase only — that is the slow inter-node wire the codec
// exists for; the intra-node reduce-scatter and allgather model fast local
// links and stay exact (DESIGN.md §13). The non-power-of-two fold transfers
// also stay exact: they are one hop each way and carry a payload the codec
// would requantize twice for no wire saved on the critical path.
void hierarchical_allreduce(Comm& comm, std::byte* data, std::size_t count,
                            DType dtype, int ranks_per_node, bool use_adasum,
                            std::span<const TensorSlice> slices = {},
                            int tag_base = 0,
                            const CompressionOptions& compression = {});

void hierarchical_allreduce(Comm& comm, Tensor& tensor, int ranks_per_node,
                            bool use_adasum,
                            std::span<const TensorSlice> slices = {},
                            int tag_base = 0,
                            const CompressionOptions& compression = {});

// Topology-aware overloads: the grouping arity comes from the modeled link
// speeds (Topology::group_size_by_link_speed) instead of the caller — flat
// when intra is no faster than inter, gpus_per_node otherwise. Identical to
// calling the explicit-arity form with that derived value (tests pin this).
void hierarchical_allreduce(Comm& comm, std::byte* data, std::size_t count,
                            DType dtype, const Topology& topology,
                            bool use_adasum,
                            std::span<const TensorSlice> slices = {},
                            int tag_base = 0,
                            const CompressionOptions& compression = {});

void hierarchical_allreduce(Comm& comm, Tensor& tensor,
                            const Topology& topology, bool use_adasum,
                            std::span<const TensorSlice> slices = {},
                            int tag_base = 0,
                            const CompressionOptions& compression = {});

}  // namespace adasum
