#include "collectives/hierarchical.h"

#include <bit>
#include <cstring>
#include <vector>

#include "analysis/analyzer.h"
#include "base/check.h"
#include "collectives/adasum_rvh.h"
#include "collectives/primitives.h"
#include "collectives/sum_allreduce.h"
#include "tensor/kernels.h"

namespace adasum {

void hierarchical_allreduce(Comm& comm, std::byte* data, std::size_t count,
                            DType dtype, int ranks_per_node, bool use_adasum,
                            std::span<const TensorSlice> slices,
                            int tag_base,
                            const CompressionOptions& compression) {
  const int world = comm.size();
  const int local_size = ranks_per_node;
  ADASUM_CHECK_GE(local_size, 1);
  ADASUM_CHECK_EQ(world % local_size, 0);
  const int num_nodes = world / local_size;
  ADASUM_CHECK_MSG(std::has_single_bit(static_cast<unsigned>(num_nodes)),
                   "hierarchical allreduce requires a power-of-two node count");
  if (world == 1 || count == 0) return;

  const int rank = comm.rank();
  const int node = rank / local_size;
  const int local = rank % local_size;
  const int node_base = node * local_size;
  const std::size_t elem = dtype_size(dtype);

#if ADASUM_ANALYZE
  // The three phases below are collectives that declare their own epochs;
  // this outer epoch is observational only (declaring the traffic here too
  // would double-count the nested schedules).
  analysis::EpochGuard epoch(comm.analyzer(), comm.rank(),
                             "hierarchical_allreduce");
#endif

  // ---- Phase 1: local ring reduce-scatter over the node's ranks ----------
  // After p-1 steps, local rank j owns the fully summed chunk (j+1) % p.
  std::vector<int> node_group(static_cast<std::size_t>(local_size));
  for (int i = 0; i < local_size; ++i) node_group[static_cast<std::size_t>(i)] = node_base + i;
  ring_reduce_scatter_sum(comm, data, count, dtype, node_group, tag_base);

  const int owned_chunk = owned_chunk_after_reduce_scatter(local, local_size);
  const ChunkRange owned = chunk_range(count, local_size, owned_chunk);
  const std::size_t cb = owned.begin;
  const std::size_t ce = owned.end;
  const std::size_t chunk_count = owned.size();

  if (use_adasum && local_size > 1) {
    // The node acts as one logical worker: average the local sum so the
    // cross-node Adasum sees the node's mean gradient.
    kernels::scale_bytes(1.0 / local_size, data + cb * elem, chunk_count,
                         dtype);
  }

  // ---- Phase 2: cross-node reduction on the owned shard -------------------
  if (num_nodes > 1 && chunk_count > 0) {
    std::vector<int> cross_group;
    cross_group.reserve(num_nodes);
    for (int n = 0; n < num_nodes; ++n)
      cross_group.push_back(n * local_size + local);

    if (use_adasum) {
      // Rebase the layer table onto the owned shard.
      const TensorSlice whole{"all", 0, count};
      const std::span<const TensorSlice> layers =
          slices.empty() ? std::span<const TensorSlice>{&whole, 1} : slices;
      std::vector<TensorSlice> rebased;
      for (const TensorSlice& s : layers) {
        const std::size_t lo = std::max(s.offset, cb);
        const std::size_t hi = std::min(s.offset + s.count, ce);
        if (hi > lo) rebased.push_back(TensorSlice{s.name, lo - cb, hi - lo});
      }
      adasum_rvh_allreduce(comm, data + cb * elem, chunk_count, dtype,
                           rebased, tag_base + 1000, cross_group,
                           compression);
    } else {
      // Plain sum across nodes: the in-place sum-RVH runs the identical
      // pairwise-halving schedule this blob used to spell out by hand, with
      // pooled scratch instead of per-level vectors.
      rvh_allreduce_sum(comm, data + cb * elem, chunk_count, dtype,
                        tag_base + 2000, cross_group, compression);
    }
  }

  // ---- Phase 3: local ring allgather --------------------------------------
  ring_allgather(comm, data, count, dtype, node_group, tag_base + 3000);
}

void hierarchical_allreduce(Comm& comm, Tensor& tensor, int ranks_per_node,
                            bool use_adasum,
                            std::span<const TensorSlice> slices,
                            int tag_base,
                            const CompressionOptions& compression) {
  hierarchical_allreduce(comm, tensor.data(), tensor.size(), tensor.dtype(),
                         ranks_per_node, use_adasum, slices, tag_base,
                         compression);
}

}  // namespace adasum
