#include "collectives/hierarchical.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

#include "analysis/analyzer.h"
#include "base/check.h"
#include "collectives/adasum_rvh.h"
#include "collectives/primitives.h"
#include "collectives/sum_allreduce.h"
#include "comm/pipeline.h"
#include "core/adasum.h"
#include "tensor/kernels.h"

namespace adasum {
namespace {

int index_in_group(std::span<const int> group, int rank) {
  for (std::size_t i = 0; i < group.size(); ++i)
    if (group[i] == rank) return static_cast<int>(i);
  return -1;
}

// The world splits on a uniform S = ranks_per_node shard grid. A node of
// size s < S (the ragged last node) runs its local ring phases over s
// SHARD-ALIGNED chunks: chunk c covers shards [S*c/s, S*(c+1)/s), so every
// node — whatever its size — reduces whole shards and the per-shard
// cross-node groups operate on identical element ranges. For s == S this
// degenerates to one shard per chunk, i.e. the classic chunk_range split.
int first_shard_of_chunk(int S, int s, int c) { return S * c / s; }

// The local chunk index that contains shard k in a node of size s (inverse
// of first_shard_of_chunk): the largest c with S*c/s <= k.
int chunk_of_shard(int S, int s, int k) { return (s * (k + 1) - 1) / S; }

// Group-local owner of shard k inside a node of size s: the ring leaves
// chunk c with local rank (c-1+s) % s (owned_chunk_after_reduce_scatter run
// backwards). For a full node this is the familiar (k-1+S) % S.
int local_owner_of_shard(int S, int s, int k) {
  return (chunk_of_shard(S, s, k) - 1 + s) % s;
}

// Cross-node allreduce over `group` (one rank per node) that accepts ANY
// group size. A non-power-of-two group runs the standard fold: extra rank
// group[m+e] (m = bit_floor) ships its shard to core rank group[e], which
// pre-combines it (Adasum pairwise or plain sum), the power-of-two core
// group[0..m) runs the RVH recursion, and the result ships back. The fold
// transfers travel exact (see hierarchical.h) but are chunk-streamed like
// every other bulk transfer. `slices` must be rebased to [0, n) and
// non-empty in Adasum mode.
void cross_allreduce(Comm& comm, std::byte* data, std::size_t n, DType dtype,
                     bool use_adasum, std::span<const TensorSlice> slices,
                     int tag, std::span<const int> group,
                     const CompressionOptions& compression) {
  const int G = static_cast<int>(group.size());
  if (G <= 1 || n == 0) return;
  const int m = static_cast<int>(std::bit_floor(static_cast<unsigned>(G)));
  const int extras = G - m;
  const int idx = index_in_group(group, comm.rank());
  ADASUM_CHECK_MSG(idx >= 0, "calling rank must be in the cross group");
  const std::size_t elem = dtype_size(dtype);
  const std::size_t bytes = n * elem;
  const std::size_t chunk = comm.pipeline().chunk_bytes_for(elem);
  // Fold tags sit above the RVH tag range (tag+0..tag+8*levels+2, levels
  // <= 30) and well below the next collective's namespace.
  const int fold_in_tag = tag + 800;
  const int fold_out_tag = tag + 801;

  if (extras > 0 && idx >= m) {
    // Extra rank: hand the shard to the core partner, wait for the result.
    const int core_peer = group[static_cast<std::size_t>(idx - m)];
    {
#if ADASUM_ANALYZE
      analysis::EpochGuard epoch(comm.analyzer(), comm.rank(),
                                 "hierarchical_fold_in");
      if (epoch.declaring()) {
        analysis::EpochExpectation& ex = epoch.expect();
        for (std::size_t c = chunk_messages(bytes, chunk); c > 0; --c)
          ex.send(core_peer, fold_in_tag);
      }
#endif
      comm.send_chunks(core_peer, {data, bytes}, chunk, fold_in_tag);
    }
#if ADASUM_ANALYZE
    analysis::EpochGuard epoch(comm.analyzer(), comm.rank(),
                               "hierarchical_fold_out");
    if (epoch.declaring()) {
      analysis::EpochExpectation& ex = epoch.expect();
      for (std::size_t c = chunk_messages(bytes, chunk); c > 0; --c)
        ex.recv(core_peer, fold_out_tag);
    }
#endif
    comm.recv_chunks_into(core_peer, {data, bytes}, chunk, fold_out_tag);
    return;
  }

  const bool folds = extras > 0 && idx < extras;
  if (folds) {
    const int extra_peer = group[static_cast<std::size_t>(m + idx)];
    PooledBuffer peer(comm.pool(), bytes);
    {
#if ADASUM_ANALYZE
      analysis::EpochGuard epoch(comm.analyzer(), comm.rank(),
                                 "hierarchical_fold_in");
      if (epoch.declaring()) {
        analysis::EpochExpectation& ex = epoch.expect();
        for (std::size_t c = chunk_messages(bytes, chunk); c > 0; --c)
          ex.recv(extra_peer, fold_in_tag);
      }
#endif
      comm.recv_chunks_into(extra_peer, peer.bytes(bytes), chunk,
                            fold_in_tag);
    }
    if (use_adasum) {
      // Pairwise Adasum: a = this core rank's shard, b = the extra's. The
      // dots are local — no triple allreduce, the pair is complete here.
      for (const TensorSlice& s : slices) {
        const std::size_t off = s.offset * elem;
        const kernels::DotTriple t = kernels::dot_triple_bytes(
            data + off, peer.data() + off, s.count, dtype);
        const AdasumFactors f = adasum_factors(t);
        kernels::scaled_sum_bytes(data + off, f.ca, peer.data() + off, f.cb,
                                  data + off, s.count, dtype);
      }
    } else {
      kernels::add_bytes(peer.data(), data, n, dtype);
    }
  }

  if (m > 1) {
    const std::span<const int> core = group.first(static_cast<std::size_t>(m));
    if (use_adasum) {
      adasum_rvh_allreduce(comm, data, n, dtype, slices, tag, core,
                           compression);
    } else {
      rvh_allreduce_sum(comm, data, n, dtype, tag, core, compression);
    }
  }

  if (folds) {
    const int extra_peer = group[static_cast<std::size_t>(m + idx)];
#if ADASUM_ANALYZE
    analysis::EpochGuard epoch(comm.analyzer(), comm.rank(),
                               "hierarchical_fold_out");
    if (epoch.declaring()) {
      analysis::EpochExpectation& ex = epoch.expect();
      for (std::size_t c = chunk_messages(bytes, chunk); c > 0; --c)
        ex.send(extra_peer, fold_out_tag);
    }
#endif
    comm.send_chunks(extra_peer, {data, bytes}, chunk, fold_out_tag);
  }
}

}  // namespace

void hierarchical_allreduce(Comm& comm, std::byte* data, std::size_t count,
                            DType dtype, int ranks_per_node, bool use_adasum,
                            std::span<const TensorSlice> slices,
                            int tag_base,
                            const CompressionOptions& compression) {
  const int world = comm.size();
  ADASUM_CHECK_GE(ranks_per_node, 1);
  if (world == 1 || count == 0) return;
  // S: the world-wide shard grid every node's local phase aligns to.
  const int S = std::min(ranks_per_node, world);
  const int num_nodes = (world + S - 1) / S;

  const int rank = comm.rank();
  const int node = rank / S;
  const int local = rank % S;
  const int node_base = node * S;
  const int s = std::min(S, world - node_base);  // my node's size
  const std::size_t elem = dtype_size(dtype);

#if ADASUM_ANALYZE
  // The phases below are collectives that declare their own epochs; this
  // outer epoch is observational only (declaring the traffic here too would
  // double-count the nested schedules).
  analysis::EpochGuard epoch(comm.analyzer(), comm.rank(),
                             "hierarchical_allreduce");
#endif

  // Per-call scratch lives in thread_local vectors whose capacity persists
  // across calls, so warm steady-state iterations allocate nothing (the
  // chaos/scaleout alloc gates pin this).
  thread_local std::vector<int> node_group;
  thread_local std::vector<std::size_t> bounds;
  thread_local std::vector<int> cross_group;
  thread_local std::vector<TensorSlice> rebased;

  // ---- Phase 1: local ring reduce-scatter over the node's ranks ----------
  // Chunk boundaries are shard-aligned (see first_shard_of_chunk); for a
  // full node they equal the plain chunk_range split, making this
  // bit-identical to the uniform schedule. After s-1 steps, local rank j
  // owns the fully summed chunk (j+1) % s.
  node_group.resize(static_cast<std::size_t>(s));
  for (int i = 0; i < s; ++i)
    node_group[static_cast<std::size_t>(i)] = node_base + i;
  bounds.resize(static_cast<std::size_t>(s) + 1);
  for (int c = 0; c <= s; ++c)
    bounds[static_cast<std::size_t>(c)] =
        chunk_range(count, S, first_shard_of_chunk(S, s, c)).begin;
  ring_reduce_scatter_sum(comm, data, count, dtype, node_group, bounds,
                          tag_base);

  const int owned_chunk = owned_chunk_after_reduce_scatter(local, s);
  const std::size_t cb = bounds[static_cast<std::size_t>(owned_chunk)];
  const std::size_t ce = bounds[static_cast<std::size_t>(owned_chunk) + 1];

  if (use_adasum && s > 1 && ce > cb) {
    // The node acts as one logical worker: average the local sum so the
    // cross-node Adasum sees the node's mean gradient. A ragged node
    // averages over its own size.
    kernels::scale_bytes(1.0 / s, data + cb * elem, ce - cb, dtype);
  }

  // ---- Phase 2: cross-node reduction, one collective per owned shard -----
  // A full-node rank owns exactly one shard; a ragged rank owns several and
  // runs their cross collectives back to back. The groups of distinct
  // shards never share a (src, dst) channel — every group has at most one
  // ragged member, and a full node's shard->owner map is injective — so the
  // collectives cannot interfere even though they share a tag namespace.
  if (num_nodes > 1) {
    const int k_begin = first_shard_of_chunk(S, s, owned_chunk);
    const int k_end = first_shard_of_chunk(S, s, owned_chunk + 1);
    for (int k = k_begin; k < k_end; ++k) {
      const ChunkRange shard = chunk_range(count, S, k);
      if (shard.size() == 0) continue;  // consistent: depends only on k
      cross_group.clear();
      for (int n = 0; n < num_nodes; ++n) {
        const int sn = std::min(S, world - n * S);
        cross_group.push_back(n * S + local_owner_of_shard(S, sn, k));
      }
      if (use_adasum) {
        // Rebase the layer table onto the shard. Rebased entries carry empty
        // names (only offsets matter downstream, and empty strings keep the
        // warm path allocation-free).
        const TensorSlice whole{"all", 0, count};
        const std::span<const TensorSlice> layers =
            slices.empty() ? std::span<const TensorSlice>{&whole, 1} : slices;
        rebased.clear();
        for (const TensorSlice& sl : layers) {
          const std::size_t lo = std::max(sl.offset, shard.begin);
          const std::size_t hi = std::min(sl.offset + sl.count, shard.end);
          if (hi > lo)
            rebased.push_back(
                TensorSlice{std::string(), lo - shard.begin, hi - lo});
        }
        cross_allreduce(comm, data + shard.begin * elem, shard.size(), dtype,
                        /*use_adasum=*/true, rebased, tag_base + 1000,
                        cross_group, compression);
      } else {
        cross_allreduce(comm, data + shard.begin * elem, shard.size(), dtype,
                        /*use_adasum=*/false, {}, tag_base + 2000,
                        cross_group, compression);
      }
    }
  }

  // ---- Phase 3: local ring allgather --------------------------------------
  ring_allgather(comm, data, count, dtype, node_group, bounds,
                 tag_base + 3000);
}

void hierarchical_allreduce(Comm& comm, Tensor& tensor, int ranks_per_node,
                            bool use_adasum,
                            std::span<const TensorSlice> slices,
                            int tag_base,
                            const CompressionOptions& compression) {
  hierarchical_allreduce(comm, tensor.data(), tensor.size(), tensor.dtype(),
                         ranks_per_node, use_adasum, slices, tag_base,
                         compression);
}

void hierarchical_allreduce(Comm& comm, std::byte* data, std::size_t count,
                            DType dtype, const Topology& topology,
                            bool use_adasum,
                            std::span<const TensorSlice> slices, int tag_base,
                            const CompressionOptions& compression) {
  hierarchical_allreduce(comm, data, count, dtype,
                         topology.group_size_by_link_speed(comm.size()),
                         use_adasum, slices, tag_base, compression);
}

void hierarchical_allreduce(Comm& comm, Tensor& tensor,
                            const Topology& topology, bool use_adasum,
                            std::span<const TensorSlice> slices, int tag_base,
                            const CompressionOptions& compression) {
  hierarchical_allreduce(comm, tensor.data(), tensor.size(), tensor.dtype(),
                         topology, use_adasum, slices, tag_base, compression);
}

}  // namespace adasum
