// AdasumRVH — the paper's Algorithm 1.
//
// A recursive-vector-halving allreduce modified to host the (non-
// elementwise) Adasum operator. Each reduce-scatter level:
//   1. exchanges vector halves with the neighbor at distance d, so the
//      "left" rank ends up holding slices of the left subgroup's logical
//      vector (a) and the right subgroup's (b);
//   2. computes PARTIAL dot products v = [a·b, a·a, b·b] on the local slice
//      (per layer when a boundary table is supplied, §3.6);
//   3. allreduces v across the 2d-rank group so every member has the full
//      dot products (Algorithm 1 line 17 — the extra communication step the
//      elementwise MPI user-op could not express);
//   4. applies x' = a(1 - v1/2v2) + b(1 - v1/2v3) locally.
// After the recursion bottoms out, a mirrored allgather reassembles the
// combined vector on all ranks.
//
// Requires a power-of-two world size (Algorithm 1's precondition); the
// dispatcher in allreduce.h falls back to a gather-based tree for other
// sizes.
#pragma once

#include <span>

#include "comm/world.h"
#include "tensor/fusion.h"
#include "tensor/tensor.h"

namespace adasum {

// In-place Adasum allreduce of `count` elements of `dtype` at `data`.
// `slices` — layer boundaries in elements over the full payload; pass empty
// to treat the payload as a single layer. `tag_base` namespaces this
// collective's messages so several collectives can share a Comm. `group`
// restricts the reduction to a subset of world ranks (all of whom must call
// with the same group; empty = all ranks) — the hierarchical allreduce uses
// this for its cross-node phase. `compression` selects the wire codec for
// the halving exchange and allgather transfers (DESIGN.md §13); kAuto
// follows the World, and the dot-triple allreduce always travels exact.
void adasum_rvh_allreduce(Comm& comm, std::byte* data, std::size_t count,
                          DType dtype,
                          std::span<const TensorSlice> slices = {},
                          int tag_base = 0, std::span<const int> group = {},
                          const CompressionOptions& compression = {});

// Tensor convenience overload (in place).
void adasum_rvh_allreduce(Comm& comm, Tensor& tensor,
                          std::span<const TensorSlice> slices = {},
                          int tag_base = 0, std::span<const int> group = {},
                          const CompressionOptions& compression = {});

}  // namespace adasum
