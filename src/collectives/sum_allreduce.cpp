#include "collectives/sum_allreduce.h"

#include <bit>
#include <cstring>
#include <vector>

#include "analysis/analyzer.h"
#include "base/check.h"
#include "collectives/compressed.h"
#include "comm/buffer_pool.h"
#include "comm/pipeline.h"
#include "tensor/kernels.h"

namespace adasum {
namespace {

// Chunk boundaries for the ring schedule: chunk c covers
// [c*count/p, (c+1)*count/p) rounded so the chunks tile the payload.
std::size_t chunk_begin(std::size_t count, int p, int c) {
  return count * static_cast<std::size_t>(c) / static_cast<std::size_t>(p);
}

}  // namespace

void ring_allreduce_sum(Comm& comm, std::byte* data, std::size_t count,
                        DType dtype, int tag_base,
                        const CompressionOptions& compression) {
  const int p = comm.size();
  if (p == 1 || count == 0) return;
  const int rank = comm.rank();
  const std::size_t elem = dtype_size(dtype);
  const int next = (rank + 1) % p;
  const int prev = (rank + p - 1) % p;
  const std::size_t chunk = comm.pipeline().chunk_bytes_for(elem);
  const CompressionOptions comp = resolve_compression(comm, compression, dtype);

#if ADASUM_ANALYZE
  // Ring schedule: p-1 reduce-scatter steps on tag_base+s, p-1 allgather
  // steps on tag_base+p+s, always to `next` / from `prev`. Each step's
  // segment may travel as a chunk stream; the declaration computes the same
  // per-step chunk counts as the transfers below.
  analysis::EpochGuard epoch(comm.analyzer(), rank, "ring_allreduce_sum");
  if (epoch.declaring()) {
    analysis::EpochExpectation& ex = epoch.expect();
    const auto seg_bytes = [&](int c) {
      // Wire bytes per segment: a compressed segment travels as a blob of
      // the same size at every hop (the allgather forwards it verbatim).
      return wire_transfer_bytes(
          chunk_begin(count, p, c + 1) - chunk_begin(count, p, c), elem, comp);
    };
    for (int s = 0; s < p - 1; ++s) {
      for (std::size_t c =
               chunk_messages(seg_bytes((rank - s + p) % p), chunk);
           c > 0; --c)
        ex.send(next, tag_base + s);
      for (std::size_t c =
               chunk_messages(seg_bytes((rank - s - 1 + p) % p), chunk);
           c > 0; --c)
        ex.recv(prev, tag_base + s);
      for (std::size_t c =
               chunk_messages(seg_bytes((rank + 1 - s + p) % p), chunk);
           c > 0; --c)
        ex.send(next, tag_base + p + s);
      for (std::size_t c =
               chunk_messages(seg_bytes((rank - s + p) % p), chunk);
           c > 0; --c)
        ex.recv(prev, tag_base + p + s);
    }
  }
#endif

  // Reduce-scatter: after step s, rank r has accumulated chunk
  // (r - s + p) % p from s+1 ranks; after p-1 steps rank r owns the full sum
  // of chunk (r + 1) % p. Incoming chunks stage in one pooled buffer sized
  // for the largest chunk.
  const std::size_t max_chunk =
      (count + static_cast<std::size_t>(p) - 1) / static_cast<std::size_t>(p);
  PooledBuffer scratch(comm.pool(), max_chunk * elem);
  WireCompressor wc(comm, dtype, comp, max_chunk);
  for (int s = 0; s < p - 1; ++s) {
    const int send_chunk = (rank - s + p) % p;
    const int recv_chunk = (rank - s - 1 + p) % p;
    const std::size_t sb = chunk_begin(count, p, send_chunk);
    const std::size_t se = chunk_begin(count, p, send_chunk + 1);
    // The outgoing partial's local copy is overwritten by the allgather, so
    // the compressed path ships a plain blob.
    if (wc.active())
      wc.send(next, data + sb * elem, se - sb, chunk, tag_base + s);
    else
      comm.send_chunks(next, {data + sb * elem, (se - sb) * elem}, chunk,
                       tag_base + s);
    const std::size_t rb = chunk_begin(count, p, recv_chunk);
    const std::size_t re = chunk_begin(count, p, recv_chunk + 1);
    if (wc.active()) {
      // Fused decode-add (DESIGN.md §17): the incoming blob is reduced into
      // the resident chunk in one pass over the wire bytes — no decoded
      // staging buffer is written or re-read. Accumulation still runs on the
      // decoded fp32 values through the double-accumulating kernel (§4.4.1),
      // bit-identical to decompress-then-add.
      wc.recv_apply(prev, re - rb, chunk, tag_base + s,
                    [&](const std::byte* blob) {
                      decompress_add_f32(
                          blob, wc.options(), re - rb, /*offset=*/0,
                          {reinterpret_cast<float*>(data + rb * elem),
                           re - rb});
                    });
    } else {
      // The sum is elementwise, so each chunk is added the moment it lands —
      // bit-identical to the whole-segment add, but overlapped with the
      // remaining transfers of the stream.
      comm.recv_chunks_into(prev, scratch.bytes((re - rb) * elem), chunk,
                            tag_base + s,
                            [&](std::size_t off, std::size_t len) {
                              kernels::add_bytes(scratch.data() + off,
                                                 data + rb * elem + off,
                                                 len / elem, dtype);
                            });
    }
  }

  // Allgather: circulate the owned (fully reduced) chunks, each received
  // directly at its final offset.
  if (wc.active()) {
    // Verbatim blob forwarding: chunk c's blob is created ONCE by its owner
    // and forwarded unchanged hop to hop; every rank (owner included, via
    // the s == 0 decode of its own blob) materializes chunk c from the same
    // bytes, so replicas end bit-identical. Re-encoding at each hop would
    // instead hand every rank a different quantization generation.
    int hold = 0;
    int incoming = 1;
    for (int s = 0; s < p - 1; ++s) {
      const int send_chunk = (rank + 1 - s + p) % p;
      const int recv_chunk = (rank - s + p) % p;
      const std::size_t sb = chunk_begin(count, p, send_chunk);
      const std::size_t se = chunk_begin(count, p, send_chunk + 1);
      if (s == 0) wc.encode(hold, data + sb * elem, se - sb);
      wc.send_blob(next, hold, se - sb, chunk, tag_base + p + s);
      if (s == 0) wc.decode(hold, data + sb * elem, se - sb);
      const std::size_t rb = chunk_begin(count, p, recv_chunk);
      const std::size_t re = chunk_begin(count, p, recv_chunk + 1);
      wc.recv_blob(prev, incoming, re - rb, chunk, tag_base + p + s);
      wc.decode(incoming, data + rb * elem, re - rb);
      std::swap(hold, incoming);
    }
  } else {
    for (int s = 0; s < p - 1; ++s) {
      const int send_chunk = (rank + 1 - s + p) % p;
      const int recv_chunk = (rank - s + p) % p;
      const std::size_t sb = chunk_begin(count, p, send_chunk);
      const std::size_t se = chunk_begin(count, p, send_chunk + 1);
      comm.send_chunks(next, {data + sb * elem, (se - sb) * elem}, chunk,
                       tag_base + p + s);
      const std::size_t rb = chunk_begin(count, p, recv_chunk);
      const std::size_t re = chunk_begin(count, p, recv_chunk + 1);
      comm.recv_chunks_into(prev, {data + rb * elem, (re - rb) * elem}, chunk,
                            tag_base + p + s);
    }
  }
}

// Zero-copy RVH sum: like the Adasum variant (adasum_rvh.cpp) the segment is
// a contiguous window of the caller's buffer, only the neighbor's half is
// staged in pooled scratch, and the allgather deposits halves at their final
// offsets — no per-level vectors, no merged rebuild, no trailing memcpy.
void rvh_allreduce_sum(Comm& comm, std::byte* data, std::size_t count,
                       DType dtype, int tag_base, std::span<const int> group,
                       const CompressionOptions& compression) {
  const int size =
      group.empty() ? comm.size() : static_cast<int>(group.size());
  if (size == 1 || count == 0) return;
  ADASUM_CHECK_MSG(std::has_single_bit(static_cast<unsigned>(size)),
                   "RVH requires a power-of-two group size");
  const auto world_rank = [&](int idx) {
    return group.empty() ? idx : group[static_cast<std::size_t>(idx)];
  };
  int rank = comm.rank();
  if (!group.empty()) {
    rank = -1;
    for (std::size_t i = 0; i < group.size(); ++i)
      if (group[i] == comm.rank()) rank = static_cast<int>(i);
    ADASUM_CHECK_MSG(rank >= 0, "calling rank must belong to the group");
  }
  const std::size_t elem = dtype_size(dtype);
  // Resolved through the transport: a zero-copy transport collapses each
  // transfer to one monolithic view, and the declarations below follow.
  const std::size_t chunk =
      comm.bulk_chunk_bytes(comm.pipeline().chunk_bytes_for(elem));
  const CompressionOptions comp = resolve_compression(comm, compression, dtype);

#if ADASUM_ANALYZE
  // Pairwise halving/doubling: per level one half exchange on
  // tag_base + 4*level and one unwind exchange on +1, both with the level's
  // hypercube neighbor, each possibly split into a chunk stream. The
  // declaration walks the same segment halving as the execution so the
  // per-transfer chunk counts match.
  analysis::EpochGuard epoch(comm.analyzer(), comm.rank(),
                             "rvh_allreduce_sum");
  if (epoch.declaring()) {
    analysis::EpochExpectation& ex = epoch.expect();
    // Every payload transfer (halves and unwound segments) travels through
    // the wire codec, so the declaration sizes messages the same way.
    const auto wire = [&](std::size_t n) {
      return wire_transfer_bytes(n, elem, comp);
    };
    std::size_t dcl_count = count;
    int lvl = 0;
    for (int d = 1; d < size; d <<= 1, ++lvl) {
      const bool left = ((rank / d) % 2) == 0;
      const int nb = world_rank(left ? rank + d : rank - d);
      const std::size_t dcl_mid = dcl_count / 2;
      const std::size_t kept = left ? dcl_mid : dcl_count - dcl_mid;
      const std::size_t sent = dcl_count - kept;
      for (std::size_t c = chunk_messages(wire(sent), chunk); c > 0; --c)
        ex.send(nb, tag_base + 4 * lvl);
      for (std::size_t c = chunk_messages(wire(kept), chunk); c > 0; --c)
        ex.recv(nb, tag_base + 4 * lvl);
      for (std::size_t c = chunk_messages(wire(kept), chunk); c > 0; --c)
        ex.send(nb, tag_base + 4 * lvl + 1);
      for (std::size_t c = chunk_messages(wire(sent), chunk); c > 0; --c)
        ex.recv(nb, tag_base + 4 * lvl + 1);
      dcl_count = kept;
    }
  }
#endif

  struct Level {
    int neighbor;
    bool is_left;
    std::size_t mid, seg_count;
    int tag;
  };
  const int levels = std::countr_zero(static_cast<unsigned>(size));
  PooledBuffer half_buf(comm.pool(), ((count + 1) / 2) * elem);
  std::byte* const half = half_buf.data();
  PooledBuffer records_buf(comm.pool(),
                           static_cast<std::size_t>(levels) * sizeof(Level));
  const std::span<Level> records =
      records_buf.as<Level>(static_cast<std::size_t>(levels));
  WireCompressor wc(comm, dtype, comp, (count + 1) / 2, /*bulk_views=*/true);

  std::size_t seg_begin = 0;
  std::size_t seg_count = count;

  int level = 0;
  for (int d = 1; d < size; d <<= 1, ++level) {
    const bool is_left = ((rank / d) % 2) == 0;
    const int neighbor = is_left ? rank + d : rank - d;
    const std::size_t mid = seg_count / 2;
    const int tag = tag_base + 4 * level;
    std::byte* const seg = data + seg_begin * elem;
    records[static_cast<std::size_t>(level)] =
        Level{neighbor, is_left, mid, seg_count, tag};
    // The half shipped here leaves this rank's working set for good
    // (ownership transfers to the neighbor), so the compressed path sends a
    // plain blob — no requantize needed until the unwind.
    // On a zero-copy transport the uncompressed branch publishes a VIEW of
    // the caller's buffer. The region stays untouched until this level's
    // unwind receive, which happens-after the neighbor consumed the view
    // (its forward receive precedes its unwind send) — same argument as the
    // Adasum variant in adasum_rvh.cpp.
    const auto send_half = [&](std::byte* ptr, std::size_t n) {
      if (wc.active())
        wc.send(world_rank(neighbor), ptr, n, chunk, tag);
      else
        comm.send_bulk(world_rank(neighbor), {ptr, n * elem}, chunk, tag);
    };
    std::byte* kept;
    std::size_t kept_count;
    if (is_left) {
      send_half(seg + mid * elem, seg_count - mid);
      kept = seg;
      kept_count = mid;
    } else {
      send_half(seg, mid);
      kept = seg + mid * elem;
      kept_count = seg_count - mid;
      seg_begin += mid;
    }
    if (wc.active()) {
      // Fused decode-add straight off the (possibly zero-copy) blob view:
      // one pass over the wire bytes into the kept half, no decoded staging
      // copy. Bit-identical to decompress-then-add, and the sum still runs
      // on decoded fp32 values with double accumulation.
      wc.recv_apply(world_rank(neighbor), kept_count, chunk, tag,
                    [&](const std::byte* blob) {
                      decompress_add_f32(
                          blob, wc.options(), kept_count, /*offset=*/0,
                          {reinterpret_cast<float*>(kept), kept_count});
                    });
    } else {
      // Elementwise sum: add each incoming span where it lands — pooled
      // scratch on the eager path (overlapping the remaining transfers of
      // the stream), the PEER's published span on a zero-copy transport.
      // Bit-identical to the whole-half add either way. Every read finishes
      // inside the callback, so the view retires when the handle does.
      BulkRecv held = comm.recv_bulk(
          world_rank(neighbor), {half, kept_count * elem}, chunk, tag,
          [&](const std::byte* base, std::size_t off, std::size_t len) {
            kernels::add_bytes(base + off, kept + off, len / elem, dtype);
          });
    }
    seg_count = kept_count;
  }

  for (int l = levels - 1; l >= 0; --l) {
    const Level& r = records[static_cast<std::size_t>(l)];
    if (wc.active()) {
      // Requantize-on-unwind: decode the blob just shipped over the local
      // copy so both sides of the exchange hold bit-identical values — the
      // same consistency argument as the Adasum RVH allgather.
      wc.send_requantize(world_rank(r.neighbor), data + seg_begin * elem,
                         seg_count, chunk, r.tag + 1);
    } else {
      // Unwind segments published as views are never rewritten before the
      // collective's closing fence.
      comm.send_bulk(world_rank(r.neighbor),
                     {data + seg_begin * elem, seg_count * elem}, chunk,
                     r.tag + 1);
    }
    std::byte* dest;
    std::size_t dest_count;
    if (r.is_left) {
      dest = data + (seg_begin + r.mid) * elem;
      dest_count = r.seg_count - r.mid;
    } else {
      dest = data + (seg_begin - r.mid) * elem;
      dest_count = r.mid;
      seg_begin -= r.mid;
    }
    if (wc.active()) {
      wc.recv_into(world_rank(r.neighbor), dest, dest_count, chunk,
                   r.tag + 1);
    } else {
      // The landed segment is final output the caller reads much later, so
      // the zero-copy path deposits the peer's span with non-temporal
      // stores; the eager path already received straight into `dest`
      // (base == dest) and needs no copy at all.
      BulkRecv held = comm.recv_bulk(
          world_rank(r.neighbor), {dest, dest_count * elem}, chunk, r.tag + 1,
          [&](const std::byte* base, std::size_t off, std::size_t len) {
            if (base != dest)
              kernels::stream_copy_bytes(base + off, dest + off, len);
          });
    }
    seg_count = r.seg_count;
  }
  // Retire any views this rank still has published (the last unwind sends)
  // before the caller touches its buffer again. No-op on buffered
  // transports.
  comm.bulk_fence();
  ADASUM_CHECK_EQ(seg_count, count);
}

void ring_allreduce_sum(Comm& comm, Tensor& tensor, int tag_base,
                        const CompressionOptions& compression) {
  ring_allreduce_sum(comm, tensor.data(), tensor.size(), tensor.dtype(),
                     tag_base, compression);
}
void rvh_allreduce_sum(Comm& comm, Tensor& tensor, int tag_base,
                       const CompressionOptions& compression) {
  rvh_allreduce_sum(comm, tensor.data(), tensor.size(), tensor.dtype(),
                    tag_base, {}, compression);
}

}  // namespace adasum
