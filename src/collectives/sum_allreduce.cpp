#include "collectives/sum_allreduce.h"

#include <bit>
#include <cstring>
#include <vector>

#include "base/check.h"
#include "tensor/kernels.h"

namespace adasum {
namespace {

// Chunk boundaries for the ring schedule: chunk c covers
// [c*count/p, (c+1)*count/p) rounded so the chunks tile the payload.
std::size_t chunk_begin(std::size_t count, int p, int c) {
  return count * static_cast<std::size_t>(c) / static_cast<std::size_t>(p);
}

}  // namespace

void ring_allreduce_sum(Comm& comm, std::byte* data, std::size_t count,
                        DType dtype, int tag_base) {
  const int p = comm.size();
  if (p == 1 || count == 0) return;
  const int rank = comm.rank();
  const std::size_t elem = dtype_size(dtype);
  const int next = (rank + 1) % p;
  const int prev = (rank + p - 1) % p;

  // Reduce-scatter: after step s, rank r has accumulated chunk
  // (r - s + p) % p from s+1 ranks; after p-1 steps rank r owns the full sum
  // of chunk (r + 1) % p.
  for (int s = 0; s < p - 1; ++s) {
    const int send_chunk = (rank - s + p) % p;
    const int recv_chunk = (rank - s - 1 + p) % p;
    const std::size_t sb = chunk_begin(count, p, send_chunk);
    const std::size_t se = chunk_begin(count, p, send_chunk + 1);
    comm.send_bytes(next, {data + sb * elem, (se - sb) * elem},
                    tag_base + s);
    const std::vector<std::byte> incoming =
        comm.recv_bytes(prev, tag_base + s);
    const std::size_t rb = chunk_begin(count, p, recv_chunk);
    const std::size_t re = chunk_begin(count, p, recv_chunk + 1);
    ADASUM_CHECK_EQ(incoming.size(), (re - rb) * elem);
    kernels::add_bytes(incoming.data(), data + rb * elem, re - rb, dtype);
  }

  // Allgather: circulate the owned (fully reduced) chunks.
  for (int s = 0; s < p - 1; ++s) {
    const int send_chunk = (rank + 1 - s + p) % p;
    const int recv_chunk = (rank - s + p) % p;
    const std::size_t sb = chunk_begin(count, p, send_chunk);
    const std::size_t se = chunk_begin(count, p, send_chunk + 1);
    comm.send_bytes(next, {data + sb * elem, (se - sb) * elem},
                    tag_base + p + s);
    const std::vector<std::byte> incoming =
        comm.recv_bytes(prev, tag_base + p + s);
    const std::size_t rb = chunk_begin(count, p, recv_chunk);
    const std::size_t re = chunk_begin(count, p, recv_chunk + 1);
    ADASUM_CHECK_EQ(incoming.size(), (re - rb) * elem);
    std::memcpy(data + rb * elem, incoming.data(), incoming.size());
  }
}

void rvh_allreduce_sum(Comm& comm, std::byte* data, std::size_t count,
                       DType dtype, int tag_base) {
  const int size = comm.size();
  if (size == 1 || count == 0) return;
  ADASUM_CHECK_MSG(std::has_single_bit(static_cast<unsigned>(size)),
                   "RVH requires a power-of-two world size");
  const int rank = comm.rank();
  const std::size_t elem = dtype_size(dtype);

  struct Level {
    int neighbor;
    bool is_left;
    std::size_t mid, seg_count;
    int tag;
  };
  std::vector<Level> records;
  std::vector<std::byte> seg(data, data + count * elem);
  std::size_t seg_count = count;

  int level = 0;
  for (int d = 1; d < size; d <<= 1, ++level) {
    const bool is_left = ((rank / d) % 2) == 0;
    const int neighbor = is_left ? rank + d : rank - d;
    const std::size_t mid = seg_count / 2;
    const int tag = tag_base + 4 * level;
    std::vector<std::byte> kept, incoming;
    if (is_left) {
      comm.send_bytes(neighbor,
                      {seg.data() + mid * elem, (seg_count - mid) * elem},
                      tag);
      kept.assign(seg.data(), seg.data() + mid * elem);
      incoming = comm.recv_bytes(neighbor, tag);
    } else {
      comm.send_bytes(neighbor, {seg.data(), mid * elem}, tag);
      kept.assign(seg.data() + mid * elem, seg.data() + seg_count * elem);
      incoming = comm.recv_bytes(neighbor, tag);
    }
    ADASUM_CHECK_EQ(incoming.size(), kept.size());
    kernels::add_bytes(incoming.data(), kept.data(), kept.size() / elem,
                       dtype);
    records.push_back(Level{neighbor, is_left, mid, seg_count, tag});
    seg = std::move(kept);
    seg_count = seg.size() / elem;
  }

  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    comm.send_bytes(it->neighbor, {seg.data(), seg.size()}, it->tag + 1);
    std::vector<std::byte> theirs = comm.recv_bytes(it->neighbor, it->tag + 1);
    std::vector<std::byte> merged;
    merged.reserve(seg.size() + theirs.size());
    if (it->is_left) {
      merged.insert(merged.end(), seg.begin(), seg.end());
      merged.insert(merged.end(), theirs.begin(), theirs.end());
    } else {
      merged.insert(merged.end(), theirs.begin(), theirs.end());
      merged.insert(merged.end(), seg.begin(), seg.end());
    }
    ADASUM_CHECK_EQ(merged.size(), it->seg_count * elem);
    seg = std::move(merged);
  }
  std::memcpy(data, seg.data(), count * elem);
}

void ring_allreduce_sum(Comm& comm, Tensor& tensor, int tag_base) {
  ring_allreduce_sum(comm, tensor.data(), tensor.size(), tensor.dtype(),
                     tag_base);
}
void rvh_allreduce_sum(Comm& comm, Tensor& tensor, int tag_base) {
  rvh_allreduce_sum(comm, tensor.data(), tensor.size(), tensor.dtype(),
                    tag_base);
}

}  // namespace adasum
