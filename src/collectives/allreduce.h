// Unified allreduce entry point — the hvd.allreduce(…, op=…) analogue.
//
// Dispatches on ReduceOp and AllreduceAlgo:
//   Sum/Average + auto  → RVH when the world is a power of two, ring else.
//   Adasum      + auto  → AdasumRVH (Algorithm 1) when power of two; for
//                          other sizes, a gather→serial-tree→broadcast
//                          fallback that computes the identical tree
//                          reduction of §3.4.
//   … + kRing           → ring sum / linear (chain-order) Adasum.
//   … + kHierarchical   → §4.2.2 hierarchy with options.ranks_per_node.
// Average is sum scaled by 1/p after the reduction.
#pragma once

#include "collectives/ops.h"
#include "comm/world.h"
#include "tensor/tensor.h"

namespace adasum {

// In-place allreduce of `tensor` across all ranks of `comm`.
void allreduce(Comm& comm, Tensor& tensor, const AllreduceOptions& options,
               int tag_base = 0);

// Convenience: allreduce several tensors as one fused payload with automatic
// per-tensor layer boundaries (§4.4.3 tensor fusion + §3.6 per-layer
// Adasum). Tensors must share a dtype. Results are written back in place.
void allreduce_fused(Comm& comm, const std::vector<Tensor*>& tensors,
                     const AllreduceOptions& options, int tag_base = 0);

// Same, but staging through a caller-held FusionBuffer so repeated rounds
// over the same layer layout reuse the fused backing store and boundary
// table instead of reallocating them every call.
void allreduce_fused(Comm& comm, const std::vector<Tensor*>& tensors,
                     const AllreduceOptions& options, FusionBuffer& buffer,
                     int tag_base = 0);

}  // namespace adasum
