#include "collectives/allreduce.h"

#include <bit>
#include <cstring>

#include "analysis/analyzer.h"
#include "base/check.h"
#include "collectives/adasum_linear.h"
#include "collectives/adasum_rvh.h"
#include "collectives/hierarchical.h"
#include "collectives/sum_allreduce.h"
#include "core/adasum.h"
#include "tensor/kernels.h"

namespace adasum {
namespace {

bool power_of_two(int n) {
  return std::has_single_bit(static_cast<unsigned>(n));
}

// Gather all gradients to rank 0, run the serial tree reduction of §3.4,
// broadcast the result. Used for non-power-of-two worlds where the RVH
// schedule does not apply; numerically identical to adasum_tree.
void adasum_gather_tree(Comm& comm, Tensor& tensor,
                        std::span<const TensorSlice> slices, int tag_base) {
  const int p = comm.size();
  if (p == 1) return;
#if ADASUM_ANALYZE
  // Star schedule: every rank sends its gradient to rank 0 on tag_base and
  // receives the combined result back on tag_base + 1.
  analysis::EpochGuard epoch(comm.analyzer(), comm.rank(),
                             "adasum_gather_tree");
  if (epoch.declaring()) {
    analysis::EpochExpectation& ex = epoch.expect();
    if (comm.rank() == 0) {
      for (int r = 1; r < p; ++r) {
        ex.recv(r, tag_base);
        ex.send(r, tag_base + 1);
      }
    } else {
      ex.send(0, tag_base);
      ex.recv(0, tag_base + 1);
    }
  }
#endif
  if (comm.rank() == 0) {
    std::vector<Tensor> grads;
    grads.reserve(p);
    grads.push_back(tensor.clone());
    for (int r = 1; r < p; ++r) {
      const std::vector<std::byte> raw = comm.recv_bytes(r, tag_base);
      ADASUM_CHECK_EQ(raw.size(), tensor.nbytes());
      Tensor g(tensor.shape(), tensor.dtype());
      std::memcpy(g.data(), raw.data(), raw.size());
      grads.push_back(std::move(g));
    }
    const Tensor combined =
        slices.empty() ? adasum_tree(grads)
                       : adasum_tree_layerwise(grads, slices);
    std::memcpy(tensor.data(), combined.data(), tensor.nbytes());
    for (int r = 1; r < p; ++r)
      comm.send_bytes(r, {tensor.data(), tensor.nbytes()}, tag_base + 1);
  } else {
    comm.send_bytes(0, {tensor.data(), tensor.nbytes()}, tag_base);
    const std::vector<std::byte> result = comm.recv_bytes(0, tag_base + 1);
    ADASUM_CHECK_EQ(result.size(), tensor.nbytes());
    std::memcpy(tensor.data(), result.data(), result.size());
  }
}

}  // namespace

void allreduce(Comm& comm, Tensor& tensor, const AllreduceOptions& options,
               int tag_base) {
  const int p = comm.size();
  if (p == 1 || tensor.empty()) return;
  const std::span<const TensorSlice> slices{options.slices};

  switch (options.op) {
    case ReduceOp::kSum:
    case ReduceOp::kAverage: {
      switch (options.algo) {
        case AllreduceAlgo::kRing:
          ring_allreduce_sum(comm, tensor, tag_base, options.compression);
          break;
        case AllreduceAlgo::kRvh:
          rvh_allreduce_sum(comm, tensor, tag_base, options.compression);
          break;
        case AllreduceAlgo::kHierarchical:
          hierarchical_allreduce(comm, tensor, options.ranks_per_node,
                                 /*use_adasum=*/false, slices, tag_base,
                                 options.compression);
          break;
        case AllreduceAlgo::kAuto:
          if (power_of_two(p))
            rvh_allreduce_sum(comm, tensor, tag_base, options.compression);
          else
            ring_allreduce_sum(comm, tensor, tag_base, options.compression);
          break;
      }
      if (options.op == ReduceOp::kAverage) {
        kernels::scale_bytes(1.0 / p, tensor.data(), tensor.size(),
                             tensor.dtype());
      }
      break;
    }
    case ReduceOp::kAdasum: {
      switch (options.algo) {
        case AllreduceAlgo::kRing:
          // The linear pairwise schedule stays exact: it is the reference
          // oracle the RVH variants are tested against.
          adasum_linear_allreduce(comm, tensor, slices, tag_base);
          break;
        case AllreduceAlgo::kRvh:
          adasum_rvh_allreduce(comm, tensor, slices, tag_base, {},
                               options.compression);
          break;
        case AllreduceAlgo::kHierarchical:
          hierarchical_allreduce(comm, tensor, options.ranks_per_node,
                                 /*use_adasum=*/true, slices, tag_base,
                                 options.compression);
          break;
        case AllreduceAlgo::kAuto:
          if (power_of_two(p))
            adasum_rvh_allreduce(comm, tensor, slices, tag_base, {},
                                 options.compression);
          else
            // Gather-tree ships whole vectors point-to-point; it is the
            // fallback correctness path and stays uncompressed.
            adasum_gather_tree(comm, tensor, slices, tag_base);
          break;
      }
      break;
    }
  }
}

void allreduce_fused(Comm& comm, const std::vector<Tensor*>& tensors,
                     const AllreduceOptions& options, int tag_base) {
  FusionBuffer scratch;
  allreduce_fused(comm, tensors, options, scratch, tag_base);
}

void allreduce_fused(Comm& comm, const std::vector<Tensor*>& tensors,
                     const AllreduceOptions& options, FusionBuffer& buffer,
                     int tag_base) {
  ADASUM_CHECK(!tensors.empty());
  std::vector<const Tensor*> views(tensors.begin(), tensors.end());
  FusedTensor& fused = buffer.pack(views);
  AllreduceOptions fused_options = options;
  fused_options.slices = fused.slices;
  allreduce(comm, fused.flat, fused_options, tag_base);
  buffer.unpack(tensors);
}

}  // namespace adasum
