// Copy-based hierarchical allreduce reference — the scale-out oracle.
//
// Same role as adasum_rvh_reference.h, one level up: a deliberately naive
// spelling of the three-phase hierarchical schedule (local ring
// reduce-scatter, per-shard cross-node reduction with the non-power-of-two
// fold, local ring allgather) that stages every message through freshly
// allocated vectors and works on a private copy of the payload. The
// production path in hierarchical.h must produce BYTE-IDENTICAL results to
// this one across world sizes, node arities (including ragged last nodes
// and non-power-of-two node counts), dtypes and layer tables — the
// scaleout_test property sweep pins that at up to 512 ranks.
//
// The cross-node Adasum recursion delegates to
// adasum_rvh_allreduce_reference (itself pinned bit-identical to the
// production RVH); the sum-mode cross phase reuses the production
// rvh_allreduce_sum, which has its own independent oracle tests.
#pragma once

#include <span>

#include "comm/world.h"
#include "tensor/fusion.h"
#include "tensor/tensor.h"

namespace adasum {

void hierarchical_allreduce_reference(Comm& comm, std::byte* data,
                                      std::size_t count, DType dtype,
                                      int ranks_per_node, bool use_adasum,
                                      std::span<const TensorSlice> slices = {},
                                      int tag_base = 0);

void hierarchical_allreduce_reference(Comm& comm, Tensor& tensor,
                                      int ranks_per_node, bool use_adasum,
                                      std::span<const TensorSlice> slices = {},
                                      int tag_base = 0);

}  // namespace adasum
