#include "collectives/hierarchical_reference.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

#include "base/check.h"
#include "collectives/adasum_rvh_reference.h"
#include "collectives/sum_allreduce.h"
#include "core/adasum.h"
#include "tensor/kernels.h"

namespace adasum {
namespace {

// Shard-grid helpers, spelled independently of hierarchical.cpp so the two
// files cannot share a bug by construction (same closed forms, though — the
// grid is part of the wire contract, not an implementation detail).
int first_shard_of_chunk(int S, int s, int c) { return S * c / s; }
int chunk_of_shard(int S, int s, int k) { return (s * (k + 1) - 1) / S; }
int local_owner_of_shard(int S, int s, int k) {
  return (chunk_of_shard(S, s, k) - 1 + s) % s;
}

void send_copy(Comm& comm, int dst, const std::byte* p, std::size_t n,
               int tag) {
  comm.send_bytes_owned(dst, std::vector<std::byte>(p, p + n), tag);
}

}  // namespace

void hierarchical_allreduce_reference(Comm& comm, std::byte* data,
                                      std::size_t count, DType dtype,
                                      int ranks_per_node, bool use_adasum,
                                      std::span<const TensorSlice> slices,
                                      int tag_base) {
  const int world = comm.size();
  ADASUM_CHECK_GE(ranks_per_node, 1);
  if (world == 1 || count == 0) return;
  const int S = std::min(ranks_per_node, world);
  const int num_nodes = (world + S - 1) / S;
  const int rank = comm.rank();
  const int node = rank / S;
  const int local = rank % S;
  const int node_base = node * S;
  const int s = std::min(S, world - node_base);
  const std::size_t elem = dtype_size(dtype);

  // Private working copy of the payload; the caller's buffer is written once
  // at the end.
  std::vector<std::byte> buf(data, data + count * elem);

  // Shard-aligned chunk bounds for this node's local ring phases.
  std::vector<std::size_t> bounds(static_cast<std::size_t>(s) + 1);
  for (int c = 0; c <= s; ++c)
    bounds[static_cast<std::size_t>(c)] =
        count * static_cast<std::size_t>(first_shard_of_chunk(S, s, c)) /
        static_cast<std::size_t>(S);
  const auto chunk_begin = [&](int c) {
    return bounds[static_cast<std::size_t>(c)];
  };
  const auto chunk_size = [&](int c) {
    return bounds[static_cast<std::size_t>(c) + 1] -
           bounds[static_cast<std::size_t>(c)];
  };

  // ---- Phase 1: local ring reduce-scatter (copy-staged) ------------------
  if (s > 1) {
    const int next = node_base + (local + 1) % s;
    const int prev = node_base + (local - 1 + s) % s;
    for (int st = 0; st < s - 1; ++st) {
      const int send_chunk = (local - st + s) % s;
      const int recv_chunk = (local - st - 1 + s) % s;
      send_copy(comm, next, buf.data() + chunk_begin(send_chunk) * elem,
                chunk_size(send_chunk) * elem, tag_base + st);
      const std::vector<std::byte> in =
          comm.recv_bytes(prev, tag_base + st);
      ADASUM_CHECK_EQ(in.size(), chunk_size(recv_chunk) * elem);
      kernels::add_bytes(in.data(), buf.data() + chunk_begin(recv_chunk) * elem,
                         chunk_size(recv_chunk), dtype);
    }
  }

  const int owned_chunk = s > 1 ? (local + 1) % s : 0;
  const std::size_t cb = chunk_begin(owned_chunk);
  const std::size_t csize = chunk_size(owned_chunk);

  if (use_adasum && s > 1 && csize > 0)
    kernels::scale_bytes(1.0 / s, buf.data() + cb * elem, csize, dtype);

  // ---- Phase 2: cross-node reduction per owned shard ---------------------
  if (num_nodes > 1) {
    const int k_begin = first_shard_of_chunk(S, s, owned_chunk);
    const int k_end = first_shard_of_chunk(S, s, owned_chunk + 1);
    for (int k = k_begin; k < k_end; ++k) {
      const std::size_t sb =
          count * static_cast<std::size_t>(k) / static_cast<std::size_t>(S);
      const std::size_t se = count * static_cast<std::size_t>(k + 1) /
                             static_cast<std::size_t>(S);
      if (se <= sb) continue;
      const std::size_t n = se - sb;
      std::byte* shard = buf.data() + sb * elem;
      std::vector<int> group;
      for (int nn = 0; nn < num_nodes; ++nn) {
        const int sn = std::min(S, world - nn * S);
        group.push_back(nn * S + local_owner_of_shard(S, sn, k));
      }
      const int G = static_cast<int>(group.size());
      const int m =
          static_cast<int>(std::bit_floor(static_cast<unsigned>(G)));
      const int extras = G - m;
      int idx = -1;
      for (int i = 0; i < G; ++i)
        if (group[static_cast<std::size_t>(i)] == rank) idx = i;
      ADASUM_CHECK_GE(idx, 0);
      const int tag = tag_base + (use_adasum ? 1000 : 2000);

      // Rebase the layer table onto the shard.
      const TensorSlice whole{"all", 0, count};
      const std::span<const TensorSlice> layers =
          slices.empty() ? std::span<const TensorSlice>{&whole, 1} : slices;
      std::vector<TensorSlice> rebased;
      for (const TensorSlice& sl : layers) {
        const std::size_t lo = std::max(sl.offset, sb);
        const std::size_t hi = std::min(sl.offset + sl.count, se);
        if (hi > lo) rebased.push_back(TensorSlice{sl.name, lo - sb, hi - lo});
      }

      if (extras > 0 && idx >= m) {
        // Extra node: fold into the core partner, wait for the result.
        const int core_peer = group[static_cast<std::size_t>(idx - m)];
        send_copy(comm, core_peer, shard, n * elem, tag + 800);
        const std::vector<std::byte> back =
            comm.recv_bytes(core_peer, tag + 801);
        ADASUM_CHECK_EQ(back.size(), n * elem);
        std::memcpy(shard, back.data(), back.size());
        continue;
      }
      const bool folds = extras > 0 && idx < extras;
      if (folds) {
        const int extra_peer = group[static_cast<std::size_t>(m + idx)];
        const std::vector<std::byte> theirs =
            comm.recv_bytes(extra_peer, tag + 800);
        ADASUM_CHECK_EQ(theirs.size(), n * elem);
        if (use_adasum) {
          for (const TensorSlice& sl : rebased) {
            const std::size_t off = sl.offset * elem;
            const kernels::DotTriple t = kernels::dot_triple_bytes(
                shard + off, theirs.data() + off, sl.count, dtype);
            const AdasumFactors f = adasum_factors(t);
            kernels::scaled_sum_bytes(shard + off, f.ca, theirs.data() + off,
                                      f.cb, shard + off, sl.count, dtype);
          }
        } else {
          kernels::add_bytes(theirs.data(), shard, n, dtype);
        }
      }
      if (m > 1) {
        const std::span<const int> core(group.data(),
                                        static_cast<std::size_t>(m));
        if (use_adasum) {
          adasum_rvh_allreduce_reference(comm, shard, n, dtype, rebased, tag,
                                         core);
        } else {
          rvh_allreduce_sum(comm, shard, n, dtype, tag, core);
        }
      }
      if (folds) {
        const int extra_peer = group[static_cast<std::size_t>(m + idx)];
        send_copy(comm, extra_peer, shard, n * elem, tag + 801);
      }
    }
  }

  // ---- Phase 3: local ring allgather (copy-staged) -----------------------
  if (s > 1) {
    const int next = node_base + (local + 1) % s;
    const int prev = node_base + (local - 1 + s) % s;
    for (int st = 0; st < s - 1; ++st) {
      const int send_chunk = (local + 1 - st + s) % s;
      const int recv_chunk = (local - st + s) % s;
      send_copy(comm, next, buf.data() + chunk_begin(send_chunk) * elem,
                chunk_size(send_chunk) * elem, tag_base + 3000 + st);
      const std::vector<std::byte> in =
          comm.recv_bytes(prev, tag_base + 3000 + st);
      ADASUM_CHECK_EQ(in.size(), chunk_size(recv_chunk) * elem);
      std::memcpy(buf.data() + chunk_begin(recv_chunk) * elem, in.data(),
                  in.size());
    }
  }

  std::memcpy(data, buf.data(), buf.size());
}

void hierarchical_allreduce_reference(Comm& comm, Tensor& tensor,
                                      int ranks_per_node, bool use_adasum,
                                      std::span<const TensorSlice> slices,
                                      int tag_base) {
  hierarchical_allreduce_reference(comm, tensor.data(), tensor.size(),
                                   tensor.dtype(), ranks_per_node, use_adasum,
                                   slices, tag_base);
}

}  // namespace adasum
