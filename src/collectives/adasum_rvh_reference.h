// Copy-based AdasumRVH reference (the pre-zero-copy formulation).
//
// Retained for two jobs, both of which need it to stay exactly as written:
//  * numerical oracle — tests assert the production in-place path in
//    adasum_rvh.h produces BYTE-IDENTICAL results to this one across dtypes,
//    group sizes and layer tables (the zero-copy rewrite changed only the
//    staging, never the arithmetic or the message pattern);
//  * perf baseline — bench_fig4_allreduce_latency times both paths in the
//    same run and BENCH_rvh.json records the ratio, so future changes to the
//    hot path are gated against a fixed yardstick.
//
// Staging behaviour matches the original seed implementation: one full
// private copy of the payload, per-level a/b vectors allocated with plain
// operator new (deliberately NOT the BufferPool), a merged rebuild per
// allgather level, and a trailing memcpy into the caller's buffer.
#pragma once

#include <span>

#include "comm/world.h"
#include "tensor/fusion.h"
#include "tensor/tensor.h"

namespace adasum {

void adasum_rvh_allreduce_reference(Comm& comm, std::byte* data,
                                    std::size_t count, DType dtype,
                                    std::span<const TensorSlice> slices = {},
                                    int tag_base = 0,
                                    std::span<const int> group = {});

void adasum_rvh_allreduce_reference(Comm& comm, Tensor& tensor,
                                    std::span<const TensorSlice> slices = {},
                                    int tag_base = 0,
                                    std::span<const int> group = {});

}  // namespace adasum
