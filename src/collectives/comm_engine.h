// Background allreduce engine (DESIGN.md §12).
//
// A per-rank worker thread that runs resilient allreduces from a submit
// queue, so the owning rank can overlap gradient computation with
// communication: DistributedOptimizer submits fusion-buffer buckets as
// backprop fills them and only joins at step(). The engine thread calls the
// regular Comm surface of its owner rank — every message, analyzer event and
// traffic stat is attributed to that rank, exactly as if the rank itself had
// made the call.
//
// Threading contract (what keeps this data-race-free without any locking in
// the collectives):
//   * The OWNER THREAD MUST NOT PERFORM COMM while engine ops are in
//     flight. One rank = one logical message stream; the analyzer's
//     per-rank receive state, CommStats and the vote/enroll barriers all
//     assume it. submit/wait form the happens-before edges (queue mutex),
//     so tensor payloads written before submit_allreduce are visible to the
//     worker, and results are visible to the owner after wait().
//   * Ops execute strictly in submission order. Every rank submits its
//     buckets in the same deterministic order with per-bucket tags, so
//     engines of different ranks may be on different buckets at the same
//     time without cross-talk — the mailbox matches by tag.
//   * wait() consumes tickets in submission order (each slot is reused
//     after `capacity` further submissions); submit blocks no one — it
//     CHECK-fails if the caller outruns the fixed ring, since blocking
//     would deadlock a single-threaded owner.
//
// Steady state allocates nothing: the ring of ops is pre-sized, ops carry
// raw pointers (the caller owns tensor and options for the ticket's
// lifetime), and the collectives underneath run on pooled buffers.
//
// Lifecycle: the destructor drains the queue and joins the worker. If the
// owner is unwinding with an exception, the pending ops may be blocked on
// peers that will never answer; the destructor then requests a world abort
// first (the same abort World::run itself would issue once the exception
// reaches it) so the worker wakes with WorldAborted and the join cannot
// deadlock. An engine-side RankKilled marks the rank's remaining ops as
// killed without executing them — a killed rank stops participating.
#pragma once

#include <cstdint>
#include <exception>
#include <vector>

#include "base/thread_annotations.h"
#include "collectives/resilient.h"
#include "verify/sync.h"

namespace adasum {

class CommEngine {
 public:
  using Ticket = std::uint64_t;

  explicit CommEngine(Comm& comm, std::size_t capacity = 64);
  ~CommEngine();

  CommEngine(const CommEngine&) = delete;
  CommEngine& operator=(const CommEngine&) = delete;

  // Enqueues an in-place resilient allreduce of `tensor`. The caller keeps
  // `tensor` and `options` alive and untouched until the ticket is waited.
  Ticket submit_allreduce(Tensor& tensor, const AllreduceOptions& options,
                          int tag_base);

  // Blocks until the ticket's op completed; returns its result or rethrows
  // what the op threw (RankKilled included — the owner unwinds exactly as if
  // it had run the collective itself). Tickets must be waited in submission
  // order.
  ResilientResult wait(Ticket ticket);

  // Joins every submitted op; rethrows the first error among them.
  void wait_all();

  // Tickets submitted over the engine's lifetime (tests).
  std::uint64_t submitted() const;

  // Ring size: how many tickets may be outstanding before submit CHECKs.
  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Op {
    Tensor* tensor = nullptr;
    const AllreduceOptions* options = nullptr;
    int tag_base = 0;
    ResilientResult result;
    std::exception_ptr error;
  };

  void worker();

  Comm& comm_;
  std::vector<Op> slots_;
  std::uint64_t submitted_ ADASUM_GUARDED_BY(mutex_) = 0;  // next ticket
  std::uint64_t completed_ ADASUM_GUARDED_BY(mutex_) = 0;  // worker-finished
  std::uint64_t consumed_ ADASUM_GUARDED_BY(mutex_) = 0;   // slot-reuse floor
  bool stop_ ADASUM_GUARDED_BY(mutex_) = false;
  // Worker saw RankKilled; drain without executing.
  bool killed_ ADASUM_GUARDED_BY(mutex_) = false;
  mutable sync::mutex mutex_;
  sync::condition_variable work_cv_;
  sync::condition_variable done_cv_;
  sync::thread thread_;
};

}  // namespace adasum
