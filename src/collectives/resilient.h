// Fault-tolerant allreduce wrapper (DESIGN.md §9).
//
// resilient_allreduce runs the regular allreduce dispatcher and, when the
// world is in fault-tolerant mode, turns communication faults into graceful
// degradation instead of a crashed run:
//
//   try      — the full-world collective, with every receive bounded by the
//              world's recv deadline;
//   vote     — a world-mediated OR-barrier over the alive ranks: did anyone
//              fail? The result is uniform, so every survivor takes the same
//              branch (this is what makes the protocol deadlock-free);
//   enroll   — survivors agree on a frozen, sorted membership snapshot;
//   drain    — each survivor purges its inboxes (stale traffic from the
//              failed attempt returns to the buffer pool), then a pure
//              barrier vote keeps any resend from racing a drain;
//   degrade  — the reduction completes over the surviving group via a
//              deadline-protected gather → reduce → broadcast on fresh tags;
//   give up  — after max_recovery_attempts failed recoveries the payload is
//              restored from its snapshot (the rank's local contribution)
//              and the caller is told to skip the round.
//
// A rank killed by the fault injector unwinds with RankKilled, which is
// deliberately not caught here — only CommError (timeout, corruption, dead
// peer, protocol) is recoverable. On a world without fault tolerance the
// wrapper is a plain allreduce call.
#pragma once

#include "collectives/allreduce.h"

namespace adasum {

enum class ReduceOutcome {
  kOk,        // full-world result, bit-identical to the plain collective
  kDegraded,  // reduced over a shrunken survivor group
  kSkipped,   // recovery exhausted; payload restored to the local input
};

struct ResilientResult {
  ReduceOutcome outcome = ReduceOutcome::kOk;
  int attempts = 1;      // collective attempts, including the first
  int participants = 0;  // ranks whose contributions are in the result
};

// In-place fault-tolerant allreduce of `tensor` across the alive ranks.
ResilientResult resilient_allreduce(Comm& comm, Tensor& tensor,
                                    const AllreduceOptions& options,
                                    int tag_base = 0);

// Fused-payload variant mirroring allreduce_fused: per-tensor layer
// boundaries, staging through the caller's FusionBuffer.
ResilientResult resilient_allreduce_fused(Comm& comm,
                                          const std::vector<Tensor*>& tensors,
                                          const AllreduceOptions& options,
                                          FusionBuffer& buffer,
                                          int tag_base = 0);

}  // namespace adasum
