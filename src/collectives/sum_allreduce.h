// Elementwise sum/average allreduces — the synchronous-SGD baselines.
//
// Two schedules are provided:
//  * ring: the classic bandwidth-optimal chunked ring (reduce-scatter phase
//    of p-1 steps, allgather phase of p-1 steps), works for any world size;
//  * rvh: recursive vector halving + doubling, latency-and-bandwidth optimal
//    on hypercubes (Chan et al.), power-of-two world sizes.
// Both produce the identical elementwise sum; tests assert so.
#pragma once

#include <cstddef>
#include <span>

#include "comm/world.h"
#include "tensor/tensor.h"

namespace adasum {

// In-place ring sum-allreduce. Any world size. `compression` selects the
// wire codec (DESIGN.md §13; kAuto follows the World): reduce-scatter
// segments ship as fresh blobs, while the allgather forwards each owner's
// blob VERBATIM hop to hop so every rank decodes the same stream and
// replicas stay bit-identical.
void ring_allreduce_sum(Comm& comm, std::byte* data, std::size_t count,
                        DType dtype, int tag_base = 0,
                        const CompressionOptions& compression = {});

// In-place recursive-vector-halving sum-allreduce. `group` restricts the
// reduction to a subset of world ranks (empty = the whole world; all members
// must call with the same group) — the hierarchical allreduce runs its
// cross-node sum phase this way. Power-of-two group size. Compressed
// doubling requantizes like the Adasum RVH unwind (see compressed.h).
void rvh_allreduce_sum(Comm& comm, std::byte* data, std::size_t count,
                       DType dtype, int tag_base = 0,
                       std::span<const int> group = {},
                       const CompressionOptions& compression = {});

void ring_allreduce_sum(Comm& comm, Tensor& tensor, int tag_base = 0,
                        const CompressionOptions& compression = {});
void rvh_allreduce_sum(Comm& comm, Tensor& tensor, int tag_base = 0,
                       const CompressionOptions& compression = {});

}  // namespace adasum
