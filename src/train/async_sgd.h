// Asynchronous SGD and DC-ASGD baselines (paper §6 related work).
//
// The paper positions Adasum against asynchronous approaches (Hogwild,
// Project Adam) whose staleness degrades convergence, and specifically
// against DC-ASGD (Zheng et al., the paper's [39]) which compensates
// staleness with the diagonal of the same g·gᵀ Hessian approximation Adasum
// uses — but needs an extra carefully-tuned hyperparameter λ and was only
// shown for (Momentum-)SGD.
//
// This module implements both in a deterministic parameter-server
// simulation: a global model advances one worker update per tick; the
// gradient applied at tick t was computed on the model as of tick
// t - staleness (the pull-to-push delay of `staleness` other workers'
// updates landing in between).
//
//   none:    w_{t+1} = w_t - lr * g(w_{t-s})
//   dcasgd:  w_{t+1} = w_t - lr * [g + λ g⊙g⊙(w_t - w_{t-s})]
//
// The Adasum comparison point for the same hardware budget is a synchronous
// round over `staleness+1` workers (see bench_async_baselines).
#pragma once

#include <functional>
#include <vector>

#include "data/dataset.h"
#include "nn/activations.h"
#include "train/trainer.h"

namespace adasum::train {

enum class StalenessCompensation { kNone, kDcAsgd };

struct AsyncSgdOptions {
  int staleness = 4;       // ticks between gradient computation and apply
  double lr = 0.01;
  StalenessCompensation compensation = StalenessCompensation::kNone;
  double dc_lambda = 0.1;  // DC-ASGD's variance-control hyperparameter
  std::size_t microbatch = 16;
  int epochs = 4;
  std::size_t eval_examples = 512;
  std::uint64_t seed = 9;
};

struct AsyncSgdResult {
  std::vector<double> eval_accuracy;  // per epoch
  double final_accuracy = 0.0;
  long updates = 0;
};

// Runs the parameter-server simulation. One "epoch" consumes
// train_set.size() examples across all workers.
AsyncSgdResult train_async_sgd(const ModelFactory& factory,
                               const data::Dataset& train_set,
                               const data::Dataset& eval_set,
                               const AsyncSgdOptions& options);

}  // namespace adasum::train
