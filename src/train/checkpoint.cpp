#include "train/checkpoint.h"

#include <cstring>
#include <fstream>

#include "base/check.h"

namespace adasum::train {
namespace {

constexpr char kMagic[8] = {'A', 'D', 'A', 'S', 'U', 'M', 'C', '1'};

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw CheckpointError("truncated checkpoint (u64)");
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  write_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const std::uint64_t n = read_u64(is);
  if (n > (1u << 20)) throw CheckpointError("implausible string length");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  if (!is) throw CheckpointError("truncated checkpoint (string)");
  return s;
}

}  // namespace

void save_tensors(const std::string& path,
                  const std::vector<NamedTensor>& tensors) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw CheckpointError("cannot open for writing: " + path);
  os.write(kMagic, sizeof(kMagic));
  write_u64(os, tensors.size());
  for (const NamedTensor& t : tensors) {
    write_string(os, t.name);
    write_u64(os, static_cast<std::uint64_t>(t.value.dtype()));
    write_u64(os, t.value.rank());
    for (std::size_t d : t.value.shape()) write_u64(os, d);
    os.write(reinterpret_cast<const char*>(t.value.data()),
             static_cast<std::streamsize>(t.value.nbytes()));
  }
  if (!os) throw CheckpointError("write failed: " + path);
}

std::vector<NamedTensor> load_tensors(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw CheckpointError("cannot open: " + path);
  char magic[sizeof(kMagic)];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw CheckpointError("not an adasum checkpoint: " + path);
  const std::uint64_t count = read_u64(is);
  if (count > (1u << 20)) throw CheckpointError("implausible tensor count");
  std::vector<NamedTensor> tensors;
  tensors.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    NamedTensor t;
    t.name = read_string(is);
    const std::uint64_t dtype_raw = read_u64(is);
    if (dtype_raw > 2) throw CheckpointError("bad dtype in " + t.name);
    const DType dtype = static_cast<DType>(dtype_raw);
    const std::uint64_t rank = read_u64(is);
    if (rank > 8) throw CheckpointError("implausible rank in " + t.name);
    std::vector<std::size_t> shape(rank);
    for (auto& d : shape) d = read_u64(is);
    t.value = Tensor(shape, dtype);
    is.read(reinterpret_cast<char*>(t.value.data()),
            static_cast<std::streamsize>(t.value.nbytes()));
    if (!is) throw CheckpointError("truncated payload in " + t.name);
    tensors.push_back(std::move(t));
  }
  return tensors;
}

void save_parameters(const std::string& path,
                     const std::vector<nn::Parameter*>& params) {
  std::vector<NamedTensor> tensors;
  tensors.reserve(params.size());
  for (const nn::Parameter* p : params)
    tensors.push_back(NamedTensor{p->name, p->value});
  save_tensors(path, tensors);
}

void load_parameters(const std::string& path,
                     const std::vector<nn::Parameter*>& params) {
  const std::vector<NamedTensor> tensors = load_tensors(path);
  if (tensors.size() != params.size())
    throw CheckpointError("parameter count mismatch: checkpoint has " +
                          std::to_string(tensors.size()) + ", model has " +
                          std::to_string(params.size()));
  for (std::size_t i = 0; i < params.size(); ++i) {
    nn::Parameter* p = params[i];
    const NamedTensor& t = tensors[i];
    if (t.name != p->name)
      throw CheckpointError("parameter name mismatch at index " +
                            std::to_string(i) + ": '" + t.name + "' vs '" +
                            p->name + "'");
    if (t.value.shape() != p->value.shape() ||
        t.value.dtype() != p->value.dtype())
      throw CheckpointError("shape/dtype mismatch for " + t.name);
    std::memcpy(p->value.data(), t.value.data(), t.value.nbytes());
  }
}

}  // namespace adasum::train
