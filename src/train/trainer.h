// Data-parallel training driver over the simulated MPI world.
//
// Each rank (thread) constructs a bit-identical model replica from the same
// seed, consumes its shard of the dataset, and steps through a
// DistributedOptimizer — so the run computes exactly what the corresponding
// Horovod job would, just in one address space. Rank 0 evaluates the model
// after each epoch and the world agrees on early stopping via a tiny
// allreduce (every rank holds an identical model after each communication
// round, so evaluating once is enough).
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "comm/world.h"
#include "data/dataset.h"
#include "nn/activations.h"
#include "nn/loss.h"
#include "optim/distributed_optimizer.h"
#include "optim/lr_schedule.h"
#include "optim/optimizer.h"

namespace adasum::train {

using ModelFactory =
    std::function<std::unique_ptr<nn::Sequential>(Rng& rng)>;

struct TrainConfig {
  int world_size = 4;
  std::size_t microbatch = 32;   // examples per rank per step
  int epochs = 2;
  optim::OptimizerKind optimizer = optim::OptimizerKind::kMomentum;
  optim::DistributedOptions dist;          // op / algo / local_steps / fp16
  const optim::LrSchedule* schedule = nullptr;  // required
  std::uint64_t seed = 1234;
  // Stop as soon as eval accuracy reaches this (if set).
  std::optional<double> target_accuracy;
  std::size_t eval_examples = 512;  // evaluated from eval_dataset each epoch
  std::size_t eval_batch = 64;
  bool record_train_loss = true;
  // Warm start: when non-empty, loaded into the model after construction
  // (flat layout of train::params_to_flat). Used for multi-phase training
  // (BERT phase 1 -> phase 2).
  Tensor initial_params;
  // Fault tolerance (DESIGN.md §9): bounded receives, degraded reductions
  // over survivors, and evaluator failover to the lowest alive rank. An
  // optional injector adds seeded faults on top.
  bool fault_tolerant = false;
  FaultToleranceOptions fault_tolerance;
  std::shared_ptr<FaultInjector> fault_injector;
};

struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;       // mean over the epoch's microbatches
  double eval_accuracy = 0.0;
  double eval_loss = 0.0;
  long steps_so_far = 0;         // optimizer microbatch steps (per rank)
  long rounds_so_far = 0;        // communication rounds
};

struct TrainResult {
  std::vector<EpochStats> epochs;
  bool reached_target = false;
  int epochs_to_target = -1;     // first epoch index (1-based) at target
  double best_accuracy = 0.0;
  double final_accuracy = 0.0;
  long total_rounds = 0;
  // Fault-tolerant runs: ranks killed by the injector, and the evaluator's
  // count of degraded / skipped communication rounds.
  std::vector<int> dead_ranks;
  long degraded_rounds = 0;
  long skipped_rounds = 0;
  // Final model parameters (the evaluating rank's replica, flat layout) for
  // phase chaining.
  Tensor final_params;
};

// Evaluate `model` on the first `max_examples` of `dataset`.
struct EvalResult {
  double accuracy = 0.0;
  double loss = 0.0;
};
EvalResult evaluate(nn::Sequential& model, const data::Dataset& dataset,
                    std::size_t max_examples, std::size_t batch);

// Run data-parallel training. `train` and `eval` must outlive the call.
TrainResult train_data_parallel(const ModelFactory& factory,
                                const data::Dataset& train_set,
                                const data::Dataset& eval_set,
                                const TrainConfig& config);

}  // namespace adasum::train
