#include "train/trainer.h"

#include <cmath>
#include <numeric>

#include "base/check.h"
#include "base/logging.h"
#include "train/hessian.h"

namespace adasum::train {

EvalResult evaluate(nn::Sequential& model, const data::Dataset& dataset,
                    std::size_t max_examples, std::size_t batch) {
  const std::size_t n = std::min(max_examples, dataset.size());
  ADASUM_CHECK_GT(n, 0u);
  EvalResult result;
  std::size_t done = 0;
  double loss_sum = 0.0, acc_sum = 0.0;
  std::size_t batches = 0;
  while (done < n) {
    const std::size_t take = std::min(batch, n - done);
    std::vector<std::size_t> indices(take);
    std::iota(indices.begin(), indices.end(), done);
    const data::Batch b = data::make_batch(dataset, indices);
    const Tensor logits = model.forward(b.inputs, /*train=*/false);
    const nn::LossResult lr = nn::softmax_cross_entropy(logits, b.labels);
    loss_sum += lr.loss;
    acc_sum += nn::accuracy(logits, b.labels);
    ++batches;
    done += take;
  }
  result.loss = loss_sum / static_cast<double>(batches);
  result.accuracy = acc_sum / static_cast<double>(batches);
  return result;
}

TrainResult train_data_parallel(const ModelFactory& factory,
                                const data::Dataset& train_set,
                                const data::Dataset& eval_set,
                                const TrainConfig& config) {
  ADASUM_CHECK(config.schedule != nullptr);
  ADASUM_CHECK_GE(config.world_size, 1);

  World world(config.world_size);
  if (config.fault_tolerant)
    world.enable_fault_tolerance(config.fault_tolerance);
  if (config.fault_injector != nullptr)
    world.set_fault_injector(config.fault_injector);
  TrainResult result;
  std::mutex result_mutex;

  world.run([&](Comm& comm) {
    // Identical replica on every rank: same seed stream.
    Rng model_rng(config.seed);
    std::unique_ptr<nn::Sequential> model = factory(model_rng);
    auto params = model->parameters();
    if (!config.initial_params.empty())
      flat_to_params(config.initial_params, params);
    optim::DistributedOptimizer dopt(
        comm, optim::make_optimizer(config.optimizer, params), config.dist);

    data::DataLoader loader(train_set, config.microbatch, comm.rank(),
                            comm.size(), config.seed ^ 0xDA7A10AD);
    const std::size_t steps_per_epoch = loader.batches_per_epoch();
    ADASUM_CHECK_GT(steps_per_epoch, 0u);

    const std::vector<int> everyone = [&] {
      std::vector<int> v(static_cast<std::size_t>(comm.size()));
      std::iota(v.begin(), v.end(), 0);
      return v;
    }();

    long step = 0;
    bool stop = false;
    for (int epoch = 0; epoch < config.epochs && !stop; ++epoch) {
      double loss_sum = 0.0;
      for (std::size_t s = 0; s < steps_per_epoch; ++s, ++step) {
        const data::Batch batch =
            loader.batch(static_cast<std::size_t>(epoch), s);
        const Tensor logits = model->forward(batch.inputs, /*train=*/true);
        const nn::LossResult lr =
            nn::softmax_cross_entropy(logits, batch.labels);
        loss_sum += lr.loss;
        model->backward(lr.grad);
        dopt.step(config.schedule->lr(step));
      }

      // One rank evaluates (models are identical after each round) and the
      // verdict is shared through a sum-allreduce. Without fault tolerance
      // that rank is 0; with it, the lowest ALIVE rank — evaluator failover
      // — and the sync itself degrades over survivors instead of hanging on
      // a corpse. The fourth slot counts evaluators so the survivors can
      // tell "evaluator's verdict arrived" from "it died mid-epoch".
      const int evaluator = comm.fault_tolerant() ? comm.lowest_alive() : 0;
      double eval_acc = 0.0, eval_loss = 0.0, stop_flag = 0.0;
      bool synced = true;
      if (comm.rank() == evaluator) {
        const EvalResult ev =
            evaluate(*model, eval_set, config.eval_examples, config.eval_batch);
        eval_acc = ev.accuracy;
        eval_loss = ev.loss;
        if (config.target_accuracy && ev.accuracy >= *config.target_accuracy)
          stop_flag = 1.0;
      }
      if (!comm.fault_tolerant()) {
        const std::vector<double> shared = comm.allreduce_sum_doubles(
            std::vector<double>{eval_acc, eval_loss, stop_flag}, everyone,
            /*tag=*/77000000 + epoch);
        eval_acc = shared[0];
        eval_loss = shared[1];
        stop = shared[2] > 0.0;
      } else {
        Tensor verdict({4}, DType::kFloat64);
        const std::span<double> v = verdict.span<double>();
        v[0] = eval_acc;
        v[1] = eval_loss;
        v[2] = stop_flag;
        v[3] = comm.rank() == evaluator ? 1.0 : 0.0;
        AllreduceOptions vopts;
        vopts.op = ReduceOp::kSum;
        vopts.algo = AllreduceAlgo::kAuto;
        const ResilientResult vr =
            resilient_allreduce(comm, verdict, vopts,
                                /*tag_base=*/(epoch % 64) * 65536);
        // The outcome is uniform across survivors (it is decided by votes),
        // so every rank takes the same stop/continue branch here — the
        // invariant that keeps the world deadlock-free.
        if (vr.outcome == ReduceOutcome::kSkipped || v[3] <= 0.0) {
          synced = false;  // no agreed verdict this epoch; keep training
          stop = false;
        } else {
          eval_acc = v[0] / v[3];
          eval_loss = v[1] / v[3];
          stop = v[2] > 0.0;
        }
      }

      if (comm.rank() == evaluator && synced) {
        std::lock_guard<std::mutex> lock(result_mutex);
        EpochStats stats;
        stats.epoch = epoch + 1;
        stats.train_loss = loss_sum / static_cast<double>(steps_per_epoch);
        stats.eval_accuracy = eval_acc;
        stats.eval_loss = eval_loss;
        stats.steps_so_far = step;
        stats.rounds_so_far = dopt.rounds();
        result.epochs.push_back(stats);
        result.best_accuracy = std::max(result.best_accuracy, eval_acc);
        result.final_accuracy = eval_acc;
        result.total_rounds = dopt.rounds();
        result.degraded_rounds = dopt.degraded_rounds();
        result.skipped_rounds = dopt.skipped_rounds();
        if (stop && !result.reached_target) {
          result.reached_target = true;
          result.epochs_to_target = epoch + 1;
        }
        if (stop || epoch + 1 == config.epochs)
          result.final_params = params_to_flat(params);
        ADASUM_LOG(Info) << "epoch " << epoch + 1 << " loss=" << stats.train_loss
                         << " acc=" << eval_acc;
      }
    }
  });
  result.dead_ranks = world.dead_ranks();
  return result;
}

}  // namespace adasum::train
