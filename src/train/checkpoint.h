// Model/optimizer checkpointing.
//
// Long pretraining runs (the paper's BERT phase 1 is days of cluster time)
// need restartable state. The format is a small self-describing binary:
// a magic/version header, then one record per tensor with its name, shape,
// dtype, and raw little-endian payload. Loading verifies that names, shapes
// and dtypes match the live model exactly — silently loading a mismatched
// checkpoint is the failure mode this guards against.
#pragma once

#include <string>
#include <vector>

#include "nn/module.h"

namespace adasum::train {

// Error thrown on malformed files or model/checkpoint mismatch.
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what)
      : std::runtime_error(what) {}
};

// A named tensor snapshot (checkpoints are just ordered lists of these).
struct NamedTensor {
  std::string name;
  Tensor value;
};

// Serialize/deserialize an arbitrary list of named tensors.
void save_tensors(const std::string& path,
                  const std::vector<NamedTensor>& tensors);
std::vector<NamedTensor> load_tensors(const std::string& path);

// Convenience wrappers for model parameters: saves {name, value} for every
// parameter; load writes values back in place after checking compatibility.
void save_parameters(const std::string& path,
                     const std::vector<nn::Parameter*>& params);
void load_parameters(const std::string& path,
                     const std::vector<nn::Parameter*>& params);

}  // namespace adasum::train
