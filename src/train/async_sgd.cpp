#include "train/async_sgd.h"

#include <deque>

#include "base/check.h"
#include "base/rng.h"
#include "tensor/kernels.h"
#include "train/hessian.h"

namespace adasum::train {

AsyncSgdResult train_async_sgd(const ModelFactory& factory,
                               const data::Dataset& train_set,
                               const data::Dataset& eval_set,
                               const AsyncSgdOptions& options) {
  ADASUM_CHECK_GE(options.staleness, 0);
  Rng model_rng(options.seed);
  std::unique_ptr<nn::Sequential> model = factory(model_rng);
  auto params = model->parameters();

  // Ring of past parameter snapshots: snapshot[t % (s+1)] is w at tick t.
  const int history = options.staleness + 1;
  std::deque<Tensor> snapshots;

  Rng index_rng(options.seed ^ 0xa57c);
  const std::size_t updates_per_epoch =
      train_set.size() / options.microbatch;
  ADASUM_CHECK_GT(updates_per_epoch, 0u);

  AsyncSgdResult result;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    for (std::size_t u = 0; u < updates_per_epoch; ++u) {
      const Tensor now = params_to_flat(params);
      snapshots.push_back(now.clone());
      if (static_cast<int>(snapshots.size()) > history)
        snapshots.pop_front();
      // The gradient being applied now was computed `staleness` ticks ago,
      // i.e. on the oldest snapshot in the window.
      const Tensor& stale_point = snapshots.front();

      std::vector<std::size_t> idx(options.microbatch);
      for (auto& i : idx) i = index_rng.uniform_int(train_set.size());
      const data::Batch batch = data::make_batch(train_set, idx);
      Tensor g = gradient_at(*model, batch, stale_point);

      if (options.compensation == StalenessCompensation::kDcAsgd &&
          options.staleness > 0) {
        // g~ = g + lambda * g ⊙ g ⊙ (w_now - w_stale): the diagonal
        // outer-product Hessian approximation of Zheng et al.
        auto gs = g.span<float>();
        const auto ws = now.span<float>();
        const auto ss = stale_point.span<float>();
        const float lambda = static_cast<float>(options.dc_lambda);
        for (std::size_t i = 0; i < gs.size(); ++i)
          gs[i] += lambda * gs[i] * gs[i] * (ws[i] - ss[i]);
      }

      Tensor next = now.clone();
      kernels::axpy(-options.lr, g.span<float>(), next.span<float>());
      flat_to_params(next, params);
      ++result.updates;
    }
    const EvalResult ev =
        evaluate(*model, eval_set, options.eval_examples, /*batch=*/64);
    result.eval_accuracy.push_back(ev.accuracy);
    result.final_accuracy = ev.accuracy;
  }
  return result;
}

}  // namespace adasum::train
