#include "train/hessian.h"

#include <cmath>
#include <cstring>

#include "base/check.h"
#include "tensor/kernels.h"

namespace adasum::train {

Tensor params_to_flat(const std::vector<nn::Parameter*>& params) {
  std::size_t total = 0;
  for (const nn::Parameter* p : params) total += p->size();
  Tensor flat({total});
  auto out = flat.span<float>();
  std::size_t offset = 0;
  for (const nn::Parameter* p : params) {
    const auto v = p->value.span<float>();
    std::memcpy(out.data() + offset, v.data(), v.size_bytes());
    offset += v.size();
  }
  return flat;
}

void flat_to_params(const Tensor& flat,
                    const std::vector<nn::Parameter*>& params) {
  const auto in = flat.span<float>();
  std::size_t offset = 0;
  for (nn::Parameter* p : params) {
    auto v = p->value.span<float>();
    ADASUM_CHECK_LE(offset + v.size(), in.size());
    std::memcpy(v.data(), in.data() + offset, v.size_bytes());
    offset += v.size();
  }
  ADASUM_CHECK_EQ(offset, in.size());
}

Tensor grads_to_flat(const std::vector<nn::Parameter*>& params) {
  std::size_t total = 0;
  for (const nn::Parameter* p : params) total += p->size();
  Tensor flat({total});
  auto out = flat.span<float>();
  std::size_t offset = 0;
  for (const nn::Parameter* p : params) {
    const auto g = p->grad.span<float>();
    std::memcpy(out.data() + offset, g.data(), g.size_bytes());
    offset += g.size();
  }
  return flat;
}

Tensor gradient_at(nn::Sequential& model, const data::Batch& batch,
                   const Tensor& at) {
  auto params = model.parameters();
  const Tensor saved = params_to_flat(params);
  flat_to_params(at, params);
  nn::zero_grads(params);
  const Tensor logits = model.forward(batch.inputs, /*train=*/false);
  const nn::LossResult lr = nn::softmax_cross_entropy(logits, batch.labels);
  model.backward(lr.grad);
  Tensor grad = grads_to_flat(params);
  flat_to_params(saved, params);
  nn::zero_grads(params);
  return grad;
}

Tensor hessian_vector_product(nn::Sequential& model, const data::Batch& batch,
                              const Tensor& at, const Tensor& v, double eps) {
  ADASUM_CHECK_EQ(at.size(), v.size());
  // Scale eps to the vector so the finite-difference step has a stable
  // magnitude regardless of ‖v‖.
  const double v_norm =
      std::sqrt(kernels::norm_squared(v.span<float>()));
  if (v_norm == 0.0) return Tensor(v.shape());
  const double h = eps / v_norm;

  Tensor plus = at.clone();
  kernels::axpy(h, v.span<float>(), plus.span<float>());
  Tensor minus = at.clone();
  kernels::axpy(-h, v.span<float>(), minus.span<float>());

  Tensor g_plus = gradient_at(model, batch, plus);
  const Tensor g_minus = gradient_at(model, batch, minus);
  kernels::axpy(-1.0, g_minus.span<float>(), g_plus.span<float>());
  kernels::scale(1.0 / (2.0 * h), g_plus.span<float>());
  return g_plus;
}

namespace {

// Mean HVP over a range of batches (the Hessian of the range's mean loss).
Tensor range_hvp(nn::Sequential& model,
                 const std::vector<data::Batch>& batches, std::size_t lo,
                 std::size_t hi, const Tensor& at, const Tensor& v,
                 double eps) {
  Tensor acc({at.size()});
  for (std::size_t i = lo; i < hi; ++i) {
    const Tensor h = hessian_vector_product(model, batches[i], at, v, eps);
    kernels::add(h.span<float>(), acc.span<float>());
  }
  kernels::scale(1.0 / static_cast<double>(hi - lo), acc.span<float>());
  return acc;
}

Tensor emulate_range(nn::Sequential& model,
                     const std::vector<data::Batch>& batches, std::size_t lo,
                     std::size_t hi, const Tensor& at, double lr, double eps) {
  if (hi - lo == 1) return gradient_at(model, batches[lo], at);
  const std::size_t mid = lo + (hi - lo) / 2;
  const Tensor u = emulate_range(model, batches, lo, mid, at, lr, eps);
  const Tensor v = emulate_range(model, batches, mid, hi, at, lr, eps);
  // Average of the two processing orders (§3.3), exact Hessian in place of
  // the Fisher approximation:
  //   Δ = u + v − (α/2)(H_right·u + H_left·v)
  const Tensor h_right_u = range_hvp(model, batches, mid, hi, at, u, eps);
  const Tensor h_left_v = range_hvp(model, batches, lo, mid, at, v, eps);
  Tensor out = u.clone();
  kernels::add(v.span<float>(), out.span<float>());
  kernels::axpy(-lr / 2.0, h_right_u.span<float>(), out.span<float>());
  kernels::axpy(-lr / 2.0, h_left_v.span<float>(), out.span<float>());
  return out;
}

}  // namespace

Tensor sequential_emulation_update(nn::Sequential& model,
                                   const std::vector<data::Batch>& batches,
                                   const Tensor& at, double lr, double eps) {
  ADASUM_CHECK(!batches.empty());
  return emulate_range(model, batches, 0, batches.size(), at, lr, eps);
}

}  // namespace adasum::train
