// Exact-Hessian sequential emulation (paper §3.7, Figure 2).
//
// For models small enough, the staleness-corrected sequential update of
// Equation 2 can be computed with the TRUE Hessian instead of the Fisher
// (g·gᵀ) approximation Adasum uses. Hessian-vector products are evaluated by
// central differences of the exact gradient —
//     H·v ≈ (∇L(w + εv) − ∇L(w − εv)) / 2ε
// — which equals the exact Hessian action up to O(ε²‖v‖³) and needs only
// two extra gradient evaluations per product.
//
// The sequential emulation mirrors Adasum's binary tree (§3.4), so the three
// quantities Figure 2 compares are aligned estimators of the same object:
//   emulation(u, v) = u + v − (α/2)(H_right·u + H_left·v)   (exact Hessian)
//   adasum(u, v)    = u + v − (u·v)(u/2‖u‖² + v/2‖v‖²)      (Fisher approx)
//   syncsgd(u, v)   = u + v                                  (no correction)
#pragma once

#include <vector>

#include "data/dataset.h"
#include "nn/activations.h"
#include "nn/loss.h"
#include "tensor/tensor.h"

namespace adasum::train {

// Flat-vector views of a model's parameters/gradients (fp32).
Tensor params_to_flat(const std::vector<nn::Parameter*>& params);
void flat_to_params(const Tensor& flat,
                    const std::vector<nn::Parameter*>& params);
Tensor grads_to_flat(const std::vector<nn::Parameter*>& params);

// Gradient of the mean cross-entropy loss of `batch` at parameter point
// `at` (the model's parameters are restored afterwards).
Tensor gradient_at(nn::Sequential& model, const data::Batch& batch,
                   const Tensor& at);

// Exact-Hessian-vector product by central differences at `at`.
Tensor hessian_vector_product(nn::Sequential& model, const data::Batch& batch,
                              const Tensor& at, const Tensor& v,
                              double eps = 1e-3);

// Tree-recursive sequential emulation over `batches`, starting from the
// parameter point `at`, with learning rate `lr`: returns the combined update
// direction (the Δ such that w_next = w − lr·Δ... the lr enters the
// second-order correction term).
Tensor sequential_emulation_update(nn::Sequential& model,
                                   const std::vector<data::Batch>& batches,
                                   const Tensor& at, double lr,
                                   double eps = 1e-3);

}  // namespace adasum::train
