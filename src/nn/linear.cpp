#include "nn/linear.h"

#include <cstring>

#include "base/check.h"

namespace adasum::nn {

void matmul(const float* a, const float* b, float* c, std::size_t m,
            std::size_t k, std::size_t n, bool accumulate) {
  if (!accumulate) std::memset(c, 0, m * n * sizeof(float));
  // i-k-j order: streams b and c rows, vectorizes the inner j loop.
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void matmul_bt(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n, bool accumulate) {
  // c[i,j] = sum_kk a[i,kk] * b[j,kk]: dot of two contiguous rows.
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = accumulate ? crow[j] + acc : acc;
    }
  }
}

void matmul_at(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n, bool accumulate) {
  if (!accumulate) std::memset(c, 0, k * n * sizeof(float));
  // c[kk,j] += a[i,kk] * b[i,j]: outer-product accumulation per i.
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    const float* brow = b + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      float* crow = c + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

namespace {

// Rows of a possibly token-shaped input: (B, in) -> B, (B, T, in) -> B*T.
std::size_t row_count(const Tensor& x, std::size_t in_features) {
  ADASUM_CHECK_GE(x.rank(), 2u);
  ADASUM_CHECK_EQ(x.shape().back(), in_features);
  return x.size() / in_features;
}

std::vector<std::size_t> output_shape(const Tensor& x, std::size_t out) {
  std::vector<std::size_t> shape = x.shape();
  shape.back() = out;
  return shape;
}

}  // namespace

Linear::Linear(std::string name, std::size_t in_features,
               std::size_t out_features, Rng& rng, bool xavier, bool bias)
    : name_(std::move(name)),
      in_(in_features),
      out_(out_features),
      has_bias_(bias),
      weight_(name_ + ".weight", {out_features, in_features}),
      bias_(name_ + ".bias", {out_features}) {
  if (xavier)
    xavier_init(weight_.value, in_, out_, rng);
  else
    he_init(weight_.value, in_, rng);
}

Tensor Linear::forward(const Tensor& x, bool /*train*/) {
  const std::size_t rows = row_count(x, in_);
  cached_input_ = x;
  Tensor y(output_shape(x, out_));
  // y[r, o] = sum_i x[r, i] * w[o, i]  (+ b[o])
  matmul_bt(x.span<float>().data(), weight_.value.span<float>().data(),
            y.span<float>().data(), rows, in_, out_);
  if (has_bias_) {
    auto ys = y.span<float>();
    const auto bs = bias_.value.span<float>();
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t o = 0; o < out_; ++o) ys[r * out_ + o] += bs[o];
  }
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  ADASUM_CHECK(!cached_input_.empty());
  const std::size_t rows = row_count(cached_input_, in_);
  ADASUM_CHECK_EQ(grad_out.size(), rows * out_);

  // dW[o, i] += sum_r dy[r, o] * x[r, i]
  matmul_at(grad_out.span<float>().data(),
            cached_input_.span<float>().data(),
            weight_.grad.span<float>().data(), rows, out_, in_,
            /*accumulate=*/true);
  if (has_bias_) {
    auto gb = bias_.grad.span<float>();
    const auto gy = grad_out.span<float>();
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t o = 0; o < out_; ++o) gb[o] += gy[r * out_ + o];
  }
  // dx[r, i] = sum_o dy[r, o] * w[o, i]
  Tensor grad_in(cached_input_.shape());
  matmul(grad_out.span<float>().data(), weight_.value.span<float>().data(),
         grad_in.span<float>().data(), rows, out_, in_);
  return grad_in;
}

std::vector<Parameter*> Linear::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace adasum::nn
