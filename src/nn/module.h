// Layer/parameter framework for the training substrate.
//
// A deliberately small define-by-run-free framework: each Layer owns its
// parameters and caches whatever it needs from forward() to compute
// backward(). Gradients ACCUMULATE into Parameter::grad — callers zero them
// between steps (zero_grads) exactly like the frameworks the paper targets.
// All NN math is fp32 (the communication payload may be cast to fp16 by the
// distributed optimizer; see src/optim).
//
// The per-layer parameter names feed the fusion boundary table, which is what
// the per-layer Adasum (§3.6) keys on.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "tensor/tensor.h"

namespace adasum::nn {

// A named trainable tensor with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter(std::string name_, std::vector<std::size_t> shape)
      : name(std::move(name_)), value(shape), grad(std::move(shape)) {}

  std::size_t size() const { return value.size(); }
};

class Layer {
 public:
  virtual ~Layer() = default;

  // Forward pass. `train` toggles train-time behavior (dropout). The layer
  // may cache activations needed by backward(); forward/backward calls must
  // alternate (one in flight).
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  // Backward pass for the most recent forward(): accumulates parameter
  // gradients and returns the gradient w.r.t. the layer input.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  // Trainable parameters, stable order. Default: none.
  virtual std::vector<Parameter*> parameters() { return {}; }

  virtual std::string name() const = 0;
};

// Utility shared by every model: flattened parameter access.
inline std::size_t total_parameter_count(
    const std::vector<Parameter*>& params) {
  std::size_t n = 0;
  for (const Parameter* p : params) n += p->value.size();
  return n;
}

inline void zero_grads(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) p->grad.fill(0.0);
}

// ---- weight initialization ---------------------------------------------------

// He (Kaiming) normal init for ReLU networks: N(0, sqrt(2/fan_in)).
void he_init(Tensor& w, std::size_t fan_in, Rng& rng);
// Xavier/Glorot uniform init: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
void xavier_init(Tensor& w, std::size_t fan_in, std::size_t fan_out, Rng& rng);
// N(0, stddev) init (embeddings, layernorm-free transformer weights).
void normal_init(Tensor& w, double stddev, Rng& rng);

}  // namespace adasum::nn
