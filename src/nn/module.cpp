#include "nn/module.h"

#include <cmath>

namespace adasum::nn {

void he_init(Tensor& w, std::size_t fan_in, Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  auto s = w.span<float>();
  for (auto& v : s) v = static_cast<float>(rng.normal(0.0, stddev));
}

void xavier_init(Tensor& w, std::size_t fan_in, std::size_t fan_out,
                 Rng& rng) {
  const double a =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  auto s = w.span<float>();
  for (auto& v : s) v = static_cast<float>(rng.uniform(-a, a));
}

void normal_init(Tensor& w, double stddev, Rng& rng) {
  auto s = w.span<float>();
  for (auto& v : s) v = static_cast<float>(rng.normal(0.0, stddev));
}

}  // namespace adasum::nn
