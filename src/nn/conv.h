// 2-D convolution and max pooling (NCHW layout, direct algorithm).
//
// Image models in the benches are small (LeNet-5-scale, ResNetTiny), so a
// cache-friendly direct convolution is plenty; the point of these layers is
// gradient fidelity, not peak GEMM throughput.
#pragma once

#include "nn/module.h"

namespace adasum::nn {

class Conv2d : public Layer {
 public:
  Conv2d(std::string name, std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, Rng& rng, std::size_t stride = 1,
         std::size_t padding = 0);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return name_; }

  std::size_t out_size(std::size_t in) const {
    return (in + 2 * padding_ - kernel_) / stride_ + 1;
  }

 private:
  std::string name_;
  std::size_t in_c_, out_c_, kernel_, stride_, padding_;
  Parameter weight_;  // (out_c, in_c, k, k)
  Parameter bias_;    // (out_c)
  Tensor cached_input_;
};

// 2x2-style max pooling with stride == window.
class MaxPool2d : public Layer {
 public:
  MaxPool2d(std::string name, std::size_t window)
      : name_(std::move(name)), window_(window) {}

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::size_t window_;
  Tensor cached_input_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
};

// Global average pooling: (B, C, H, W) -> (B, C).
class GlobalAvgPool : public Layer {
 public:
  explicit GlobalAvgPool(std::string name = "gap") : name_(std::move(name)) {}
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::vector<std::size_t> cached_shape_;
};

}  // namespace adasum::nn
