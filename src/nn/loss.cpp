#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace adasum::nn {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels) {
  ADASUM_CHECK_GE(logits.rank(), 2u);
  const std::size_t classes = logits.shape().back();
  const std::size_t rows = logits.size() / classes;
  ADASUM_CHECK_EQ(labels.size(), rows);

  LossResult result;
  result.grad = Tensor(logits.shape());
  const auto ls = logits.span<float>();
  auto gs = result.grad.span<float>();

  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    const int label = labels[r];
    const float* row = ls.data() + r * classes;
    float* grow = gs.data() + r * classes;
    if (label < 0) continue;  // ignored position: grad stays zero
    ADASUM_CHECK_LT(static_cast<std::size_t>(label), classes);
    const float maxv = *std::max_element(row, row + classes);
    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c)
      denom += std::exp(static_cast<double>(row[c] - maxv));
    const double log_denom = std::log(denom);
    total += log_denom - static_cast<double>(row[static_cast<std::size_t>(
                             label)] - maxv);
    for (std::size_t c = 0; c < classes; ++c) {
      const double p = std::exp(static_cast<double>(row[c] - maxv)) / denom;
      grow[c] = static_cast<float>(p);
    }
    grow[static_cast<std::size_t>(label)] -= 1.0f;
    ++counted;
  }
  if (counted == 0) {
    result.loss = 0.0;
    return result;
  }
  // Mean reduction: scale loss and gradient by 1/counted.
  result.loss = total / static_cast<double>(counted);
  const float inv = 1.0f / static_cast<float>(counted);
  for (auto& g : gs) g *= inv;
  return result;
}

double accuracy(const Tensor& logits, const std::vector<int>& labels) {
  const std::size_t classes = logits.shape().back();
  const std::size_t rows = logits.size() / classes;
  ADASUM_CHECK_EQ(labels.size(), rows);
  const auto ls = logits.span<float>();
  std::size_t correct = 0, counted = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    if (labels[r] < 0) continue;
    const float* row = ls.data() + r * classes;
    const std::size_t pred = static_cast<std::size_t>(
        std::max_element(row, row + classes) - row);
    if (pred == static_cast<std::size_t>(labels[r])) ++correct;
    ++counted;
  }
  return counted == 0 ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(counted);
}

LossResult mse_loss(const Tensor& pred, const Tensor& target) {
  ADASUM_CHECK_EQ(pred.size(), target.size());
  LossResult result;
  result.grad = Tensor(pred.shape());
  const auto ps = pred.span<float>();
  const auto ts = target.span<float>();
  auto gs = result.grad.span<float>();
  double total = 0.0;
  const std::size_t n = ps.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(ps[i]) - static_cast<double>(ts[i]);
    total += d * d;
    gs[i] = static_cast<float>(2.0 * d / static_cast<double>(n));
  }
  result.loss = total / static_cast<double>(n);
  return result;
}

}  // namespace adasum::nn
