// Elementwise activation layers, shape-preserving utility layers
// (Flatten, Dropout) and the Sequential container.
#pragma once

#include <functional>
#include <memory>

#include "nn/module.h"

namespace adasum::nn {

class ReLU : public Layer {
 public:
  explicit ReLU(std::string name = "relu") : name_(std::move(name)) {}
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Tensor cached_input_;
};

class Tanh : public Layer {
 public:
  explicit Tanh(std::string name = "tanh") : name_(std::move(name)) {}
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Tensor cached_output_;
};

// Gaussian error linear unit, tanh approximation (as in BERT).
class Gelu : public Layer {
 public:
  explicit Gelu(std::string name = "gelu") : name_(std::move(name)) {}
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Tensor cached_input_;
};

// Reshapes (B, ...) to (B, prod(...)). Backward restores the original shape.
class Flatten : public Layer {
 public:
  explicit Flatten(std::string name = "flatten") : name_(std::move(name)) {}
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::vector<std::size_t> cached_shape_;
};

// Inverted dropout: active only when train=true; scales survivors by 1/keep.
// Deterministic given the layer's Rng stream.
class Dropout : public Layer {
 public:
  Dropout(std::string name, double drop_probability, Rng rng);
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  double drop_;
  Rng rng_;
  Tensor mask_;  // empty when the last forward was eval-mode
};

// Runs layers in order; concatenates their parameters.
class Sequential : public Layer {
 public:
  explicit Sequential(std::string name = "seq") : name_(std::move(name)) {}

  Sequential& add(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
    return *this;
  }
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    layers_.push_back(std::make_unique<L>(std::forward<Args>(args)...));
    return *this;
  }

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return name_; }

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Layer>> layers_;
};

// Residual connection: y = x + body(x). The body's output shape must equal
// the input shape (ResNetTiny's blocks keep channel counts constant).
class Residual : public Layer {
 public:
  Residual(std::string name, std::unique_ptr<Layer> body)
      : name_(std::move(name)), body_(std::move(body)) {}
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return body_->parameters(); }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::unique_ptr<Layer> body_;
};

}  // namespace adasum::nn
