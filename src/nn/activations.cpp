#include "nn/activations.h"

#include <cmath>
#include <numbers>

#include "base/check.h"

namespace adasum::nn {

Tensor ReLU::forward(const Tensor& x, bool /*train*/) {
  cached_input_ = x;
  Tensor y(x.shape());
  const auto xs = x.span<float>();
  auto ys = y.span<float>();
  for (std::size_t i = 0; i < xs.size(); ++i)
    ys[i] = xs[i] > 0.0f ? xs[i] : 0.0f;
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  ADASUM_CHECK_EQ(grad_out.size(), cached_input_.size());
  Tensor grad_in(cached_input_.shape());
  const auto xs = cached_input_.span<float>();
  const auto gs = grad_out.span<float>();
  auto os = grad_in.span<float>();
  for (std::size_t i = 0; i < xs.size(); ++i)
    os[i] = xs[i] > 0.0f ? gs[i] : 0.0f;
  return grad_in;
}

Tensor Tanh::forward(const Tensor& x, bool /*train*/) {
  Tensor y(x.shape());
  const auto xs = x.span<float>();
  auto ys = y.span<float>();
  for (std::size_t i = 0; i < xs.size(); ++i) ys[i] = std::tanh(xs[i]);
  cached_output_ = y;
  return y;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  Tensor grad_in(cached_output_.shape());
  const auto ys = cached_output_.span<float>();
  const auto gs = grad_out.span<float>();
  auto os = grad_in.span<float>();
  for (std::size_t i = 0; i < ys.size(); ++i)
    os[i] = gs[i] * (1.0f - ys[i] * ys[i]);
  return grad_in;
}

namespace {
// tanh-approximated GELU and its derivative.
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)

float gelu(float x) {
  const float inner = kGeluC * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

float gelu_grad(float x) {
  const float x3 = x * x * x;
  const float inner = kGeluC * (x + 0.044715f * x3);
  const float t = std::tanh(inner);
  const float sech2 = 1.0f - t * t;
  return 0.5f * (1.0f + t) +
         0.5f * x * sech2 * kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
}
}  // namespace

Tensor Gelu::forward(const Tensor& x, bool /*train*/) {
  cached_input_ = x;
  Tensor y(x.shape());
  const auto xs = x.span<float>();
  auto ys = y.span<float>();
  for (std::size_t i = 0; i < xs.size(); ++i) ys[i] = gelu(xs[i]);
  return y;
}

Tensor Gelu::backward(const Tensor& grad_out) {
  Tensor grad_in(cached_input_.shape());
  const auto xs = cached_input_.span<float>();
  const auto gs = grad_out.span<float>();
  auto os = grad_in.span<float>();
  for (std::size_t i = 0; i < xs.size(); ++i) os[i] = gs[i] * gelu_grad(xs[i]);
  return grad_in;
}

Tensor Flatten::forward(const Tensor& x, bool /*train*/) {
  ADASUM_CHECK_GE(x.rank(), 2u);
  cached_shape_ = x.shape();
  return x.reshaped({x.dim(0), x.size() / x.dim(0)});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(cached_shape_);
}

Dropout::Dropout(std::string name, double drop_probability, Rng rng)
    : name_(std::move(name)), drop_(drop_probability), rng_(rng) {
  ADASUM_CHECK_GE(drop_, 0.0);
  ADASUM_CHECK_LT(drop_, 1.0);
}

Tensor Dropout::forward(const Tensor& x, bool train) {
  if (!train || drop_ == 0.0) {
    mask_ = Tensor();
    return x;
  }
  const float keep = static_cast<float>(1.0 - drop_);
  mask_ = Tensor(x.shape());
  Tensor y(x.shape());
  const auto xs = x.span<float>();
  auto ms = mask_.span<float>();
  auto ys = y.span<float>();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ms[i] = rng_.uniform() < drop_ ? 0.0f : 1.0f / keep;
    ys[i] = xs[i] * ms[i];
  }
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (mask_.empty()) return grad_out;
  Tensor grad_in(grad_out.shape());
  const auto gs = grad_out.span<float>();
  const auto ms = mask_.span<float>();
  auto os = grad_in.span<float>();
  for (std::size_t i = 0; i < gs.size(); ++i) os[i] = gs[i] * ms[i];
  return grad_in;
}

Tensor Sequential::forward(const Tensor& x, bool train) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(h, train);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_)
    for (Parameter* p : layer->parameters()) params.push_back(p);
  return params;
}

Tensor Residual::forward(const Tensor& x, bool train) {
  Tensor y = body_->forward(x, train);
  ADASUM_CHECK_EQ(y.size(), x.size());
  auto ys = y.span<float>();
  const auto xs = x.span<float>();
  for (std::size_t i = 0; i < ys.size(); ++i) ys[i] += xs[i];
  return y;
}

Tensor Residual::backward(const Tensor& grad_out) {
  Tensor gx = body_->backward(grad_out);
  ADASUM_CHECK_EQ(gx.size(), grad_out.size());
  auto gs = gx.span<float>();
  const auto go = grad_out.span<float>();
  for (std::size_t i = 0; i < gs.size(); ++i) gs[i] += go[i];
  return gx;
}

}  // namespace adasum::nn
