// Model factories — the stand-ins for the paper's evaluation workloads
// (DESIGN.md substitution table):
//   Mlp        — generic dense net (Figure 2's Hessian-emulation subject)
//   LeNet5     — LeNet-5 on (synthetic) MNIST (§5.4, Figure 6)
//   ResNetTiny — residual convnet standing in for ResNet-50 (§5.1, Figure 5)
//   TinyBert   — causal transformer encoder standing in for BERT-Large
//                (§5.3, Tables 3/4, Figure 1b)
//
// Every factory seeds deterministically from the provided Rng, so all ranks
// of a data-parallel run construct bit-identical replicas from the same seed
// (the "user is responsible for initializing the model correctly in all
// nodes" contract of §4.1).
#pragma once

#include <memory>

#include "nn/activations.h"
#include "nn/module.h"

namespace adasum::nn {

// Dense net: dims = {in, hidden..., out}; ReLU between layers, linear head.
std::unique_ptr<Sequential> make_mlp(const std::vector<std::size_t>& dims,
                                     Rng& rng, const std::string& name = "mlp");

// Classic LeNet-5 shape: conv(6,5x5,pad2)-pool-conv(16,5x5)-pool-fc120-
// fc84-fc<classes>, tanh activations as in the original, ReLU optional.
// `input_hw` is the (square) input resolution; 28 gives the canonical
// MNIST geometry, smaller values shrink the flattened fc1 fan-in
// accordingly (the benches use 16 for speed).
std::unique_ptr<Sequential> make_lenet5(std::size_t num_classes, Rng& rng,
                                        bool relu = true,
                                        std::size_t input_hw = 28);

// Small residual convnet for (in_channels)x16x16 images: stem conv, then
// `blocks` residual pairs, pool, `blocks` more, global-avg-pool, linear head.
std::unique_ptr<Sequential> make_resnet_tiny(std::size_t in_channels,
                                             std::size_t num_classes,
                                             Rng& rng, int blocks = 2,
                                             std::size_t width = 16);

struct TinyBertConfig {
  std::size_t vocab = 64;
  std::size_t max_len = 32;
  std::size_t dim = 32;
  std::size_t ffn_dim = 64;
  int layers = 2;
  double dropout = 0.0;
};

// Pre-LN causal transformer: Embedding -> layers x [x += Attn(LN(x));
// x += FFN(LN(x))] -> LN -> Linear(vocab). Input (B, T) float token ids,
// output (B, T, vocab) logits. Suitable for a next-token objective.
std::unique_ptr<Sequential> make_tiny_bert(const TinyBertConfig& config,
                                           Rng& rng);

}  // namespace adasum::nn
