#include "nn/conv.h"

#include <limits>

#include "base/check.h"

namespace adasum::nn {

Conv2d::Conv2d(std::string name, std::size_t in_channels,
               std::size_t out_channels, std::size_t kernel, Rng& rng,
               std::size_t stride, std::size_t padding)
    : name_(std::move(name)),
      in_c_(in_channels),
      out_c_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_(name_ + ".weight", {out_channels, in_channels, kernel, kernel}),
      bias_(name_ + ".bias", {out_channels}) {
  he_init(weight_.value, in_c_ * kernel_ * kernel_, rng);
}

Tensor Conv2d::forward(const Tensor& x, bool /*train*/) {
  ADASUM_CHECK_EQ(x.rank(), 4u);
  ADASUM_CHECK_EQ(x.dim(1), in_c_);
  cached_input_ = x;
  const std::size_t batch = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = out_size(h), ow = out_size(w);
  Tensor y({batch, out_c_, oh, ow});
  const auto xs = x.span<float>();
  const auto ws = weight_.value.span<float>();
  const auto bs = bias_.value.span<float>();
  auto ys = y.span<float>();

  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      float* yplane = ys.data() + (b * out_c_ + oc) * oh * ow;
      for (std::size_t oy = 0; oy < oh; ++oy)
        for (std::size_t ox = 0; ox < ow; ++ox)
          yplane[oy * ow + ox] = bs[oc];
      for (std::size_t ic = 0; ic < in_c_; ++ic) {
        const float* xplane = xs.data() + (b * in_c_ + ic) * h * w;
        const float* wplane =
            ws.data() + (oc * in_c_ + ic) * kernel_ * kernel_;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          for (std::size_t ox = 0; ox < ow; ++ox) {
            float acc = 0.0f;
            for (std::size_t ky = 0; ky < kernel_; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                  static_cast<std::ptrdiff_t>(padding_);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kx = 0; kx < kernel_; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                    static_cast<std::ptrdiff_t>(padding_);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
                acc += xplane[iy * static_cast<std::ptrdiff_t>(w) + ix] *
                       wplane[ky * kernel_ + kx];
              }
            }
            yplane[oy * ow + ox] += acc;
          }
        }
      }
    }
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  const std::size_t batch = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = out_size(h), ow = out_size(w);
  ADASUM_CHECK_EQ(grad_out.size(), batch * out_c_ * oh * ow);

  Tensor grad_in(x.shape());
  const auto xs = x.span<float>();
  const auto ws = weight_.value.span<float>();
  const auto gys = grad_out.span<float>();
  auto gxs = grad_in.span<float>();
  auto gws = weight_.grad.span<float>();
  auto gbs = bias_.grad.span<float>();

  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      const float* gyplane = gys.data() + (b * out_c_ + oc) * oh * ow;
      for (std::size_t i = 0; i < oh * ow; ++i) gbs[oc] += gyplane[i];
      for (std::size_t ic = 0; ic < in_c_; ++ic) {
        const float* xplane = xs.data() + (b * in_c_ + ic) * h * w;
        float* gxplane = gxs.data() + (b * in_c_ + ic) * h * w;
        const float* wplane =
            ws.data() + (oc * in_c_ + ic) * kernel_ * kernel_;
        float* gwplane = gws.data() + (oc * in_c_ + ic) * kernel_ * kernel_;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const float gy = gyplane[oy * ow + ox];
            if (gy == 0.0f) continue;
            for (std::size_t ky = 0; ky < kernel_; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                  static_cast<std::ptrdiff_t>(padding_);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kx = 0; kx < kernel_; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                    static_cast<std::ptrdiff_t>(padding_);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
                const std::size_t xi =
                    static_cast<std::size_t>(iy) * w +
                    static_cast<std::size_t>(ix);
                gwplane[ky * kernel_ + kx] += gy * xplane[xi];
                gxplane[xi] += gy * wplane[ky * kernel_ + kx];
              }
            }
          }
        }
      }
    }
  }
  return grad_in;
}

std::vector<Parameter*> Conv2d::parameters() { return {&weight_, &bias_}; }

Tensor MaxPool2d::forward(const Tensor& x, bool /*train*/) {
  ADASUM_CHECK_EQ(x.rank(), 4u);
  cached_input_ = x;
  const std::size_t batch = x.dim(0), c = x.dim(1), h = x.dim(2),
                    w = x.dim(3);
  const std::size_t oh = h / window_, ow = w / window_;
  ADASUM_CHECK_GT(oh, 0u);
  Tensor y({batch, c, oh, ow});
  argmax_.assign(y.size(), 0);
  const auto xs = x.span<float>();
  auto ys = y.span<float>();
  std::size_t oi = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = xs.data() + (b * c + ch) * h * w;
      const std::size_t plane_base = (b * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < window_; ++ky) {
            for (std::size_t kx = 0; kx < window_; ++kx) {
              const std::size_t idx =
                  (oy * window_ + ky) * w + ox * window_ + kx;
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          ys[oi] = best;
          argmax_[oi] = plane_base + best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  ADASUM_CHECK_EQ(grad_out.size(), argmax_.size());
  Tensor grad_in(cached_input_.shape());
  const auto gys = grad_out.span<float>();
  auto gxs = grad_in.span<float>();
  for (std::size_t i = 0; i < gys.size(); ++i) gxs[argmax_[i]] += gys[i];
  return grad_in;
}

Tensor GlobalAvgPool::forward(const Tensor& x, bool /*train*/) {
  ADASUM_CHECK_EQ(x.rank(), 4u);
  cached_shape_ = x.shape();
  const std::size_t batch = x.dim(0), c = x.dim(1), hw = x.dim(2) * x.dim(3);
  Tensor y({batch, c});
  const auto xs = x.span<float>();
  auto ys = y.span<float>();
  for (std::size_t b = 0; b < batch; ++b)
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = xs.data() + (b * c + ch) * hw;
      float acc = 0.0f;
      for (std::size_t i = 0; i < hw; ++i) acc += plane[i];
      ys[b * c + ch] = acc / static_cast<float>(hw);
    }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  const std::size_t batch = cached_shape_[0], c = cached_shape_[1],
                    hw = cached_shape_[2] * cached_shape_[3];
  ADASUM_CHECK_EQ(grad_out.size(), batch * c);
  Tensor grad_in(cached_shape_);
  const auto gys = grad_out.span<float>();
  auto gxs = grad_in.span<float>();
  for (std::size_t b = 0; b < batch; ++b)
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float g = gys[b * c + ch] / static_cast<float>(hw);
      float* plane = gxs.data() + (b * c + ch) * hw;
      for (std::size_t i = 0; i < hw; ++i) plane[i] = g;
    }
  return grad_in;
}

}  // namespace adasum::nn
