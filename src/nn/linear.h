// Fully-connected layer: y = x Wᵀ + b.
#pragma once

#include "nn/module.h"

namespace adasum::nn {

// Input (B, in_features) -> output (B, out_features). Also accepts
// (B, T, in_features) token tensors, treating B*T as the batch dimension —
// the transformer blocks rely on this.
class Linear : public Layer {
 public:
  // He init by default (ReLU nets); set `xavier` for tanh/softmax heads.
  Linear(std::string name, std::size_t in_features, std::size_t out_features,
         Rng& rng, bool xavier = false, bool bias = true);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return name_; }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  std::string name_;
  std::size_t in_, out_;
  bool has_bias_;
  Parameter weight_;  // (out, in)
  Parameter bias_;    // (out)
  Tensor cached_input_;
};

// Minimal row-major GEMM helpers shared by the NN layers:
//   c[m,n] (+)= a[m,k] * b[k,n]          (matmul)
//   c[m,n] (+)= a[m,k] * b[n,k]ᵀ         (matmul_bt)
//   c[k,n] (+)= a[m,k]ᵀ * b[m,n]         (matmul_at)
// `accumulate` false overwrites c. Sizes are in elements; all fp32.
void matmul(const float* a, const float* b, float* c, std::size_t m,
            std::size_t k, std::size_t n, bool accumulate = false);
void matmul_bt(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n, bool accumulate = false);
void matmul_at(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n, bool accumulate = false);

}  // namespace adasum::nn
