// Loss functions. Each returns the scalar loss (mean over examples) and the
// gradient w.r.t. the logits/predictions, ready to feed Layer::backward.
//
// Softmax cross-entropy is the negative log likelihood the paper's Hessian
// approximation (Appendix A.1, Fisher information) assumes.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace adasum::nn {

struct LossResult {
  double loss = 0.0;
  Tensor grad;  // dL/dlogits, same shape as the logits
};

// logits: (B, C) with labels.size() == B, or (B, T, V) with
// labels.size() == B*T (row-major). label -1 means "ignore this position".
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels);

// Fraction of rows whose argmax matches the label (ignoring -1 labels).
double accuracy(const Tensor& logits, const std::vector<int>& labels);

// Mean squared error over all elements.
LossResult mse_loss(const Tensor& pred, const Tensor& target);

}  // namespace adasum::nn
