// Transformer building blocks: LayerNorm, Embedding (+ learned positions)
// and single-head self-attention. Together with Linear/Gelu/Residual these
// compose TinyBert (src/nn/models.h), the BERT-Large stand-in of the
// evaluation benches (see DESIGN.md substitution table).
#pragma once

#include "nn/module.h"

namespace adasum::nn {

// Layer normalization over the last dimension, with learned gain and bias.
class LayerNorm : public Layer {
 public:
  LayerNorm(std::string name, std::size_t dim, double eps = 1e-5);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&gain_, &bias_}; }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::size_t dim_;
  double eps_;
  Parameter gain_;  // (dim), init 1
  Parameter bias_;  // (dim), init 0
  Tensor cached_norm_;  // normalized activations (before gain/bias)
  std::vector<float> cached_inv_std_;
};

// Token embedding plus learned positional embedding.
// Input: (B, T) tensor of token ids stored as floats. Output: (B, T, dim).
class Embedding : public Layer {
 public:
  Embedding(std::string name, std::size_t vocab, std::size_t max_len,
            std::size_t dim, Rng& rng);

  Tensor forward(const Tensor& ids, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override {
    return {&token_table_, &position_table_};
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::size_t vocab_, max_len_, dim_;
  Parameter token_table_;     // (vocab, dim)
  Parameter position_table_;  // (max_len, dim)
  Tensor cached_ids_;
};

// Single-head scaled dot-product self-attention with an output projection.
// Input/output: (B, T, dim). Optionally causal (masks future positions) —
// TinyBert uses causal attention for its next-token objective.
class SelfAttention : public Layer {
 public:
  SelfAttention(std::string name, std::size_t dim, Rng& rng,
                bool causal = true);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::size_t dim_;
  bool causal_;
  Parameter wq_, wk_, wv_, wo_;  // (dim, dim) each
  // Forward caches for backward.
  Tensor cached_x_, cached_q_, cached_k_, cached_v_, cached_attn_,
      cached_context_;
};

}  // namespace adasum::nn
