#include "nn/transformer.h"

#include <cmath>
#include <limits>

#include "base/check.h"
#include "nn/linear.h"

namespace adasum::nn {

LayerNorm::LayerNorm(std::string name, std::size_t dim, double eps)
    : name_(std::move(name)),
      dim_(dim),
      eps_(eps),
      gain_(name_ + ".gain", {dim}),
      bias_(name_ + ".bias", {dim}) {
  gain_.value.fill(1.0);
}

Tensor LayerNorm::forward(const Tensor& x, bool /*train*/) {
  ADASUM_CHECK_EQ(x.shape().back(), dim_);
  const std::size_t rows = x.size() / dim_;
  cached_norm_ = Tensor(x.shape());
  cached_inv_std_.assign(rows, 0.0f);
  Tensor y(x.shape());
  const auto xs = x.span<float>();
  const auto gs = gain_.value.span<float>();
  const auto bs = bias_.value.span<float>();
  auto ns = cached_norm_.span<float>();
  auto ys = y.span<float>();

  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = xs.data() + r * dim_;
    float mean = 0.0f;
    for (std::size_t i = 0; i < dim_; ++i) mean += row[i];
    mean /= static_cast<float>(dim_);
    float var = 0.0f;
    for (std::size_t i = 0; i < dim_; ++i) {
      const float d = row[i] - mean;
      var += d * d;
    }
    var /= static_cast<float>(dim_);
    const float inv_std =
        1.0f / std::sqrt(var + static_cast<float>(eps_));
    cached_inv_std_[r] = inv_std;
    for (std::size_t i = 0; i < dim_; ++i) {
      const float n = (row[i] - mean) * inv_std;
      ns[r * dim_ + i] = n;
      ys[r * dim_ + i] = n * gs[i] + bs[i];
    }
  }
  return y;
}

Tensor LayerNorm::backward(const Tensor& grad_out) {
  const std::size_t rows = cached_norm_.size() / dim_;
  ADASUM_CHECK_EQ(grad_out.size(), rows * dim_);
  Tensor grad_in(cached_norm_.shape());
  const auto gys = grad_out.span<float>();
  const auto ns = cached_norm_.span<float>();
  const auto gs = gain_.value.span<float>();
  auto gg = gain_.grad.span<float>();
  auto gb = bias_.grad.span<float>();
  auto gxs = grad_in.span<float>();

  for (std::size_t r = 0; r < rows; ++r) {
    const float* gy = gys.data() + r * dim_;
    const float* n = ns.data() + r * dim_;
    float* gx = gxs.data() + r * dim_;
    // dL/dn_i = gy_i * gain_i; then the standard layernorm backward:
    // gx = inv_std * (dn - mean(dn) - n * mean(dn ⊙ n))
    float mean_dn = 0.0f, mean_dn_n = 0.0f;
    for (std::size_t i = 0; i < dim_; ++i) {
      const float dn = gy[i] * gs[i];
      mean_dn += dn;
      mean_dn_n += dn * n[i];
      gg[i] += gy[i] * n[i];
      gb[i] += gy[i];
    }
    mean_dn /= static_cast<float>(dim_);
    mean_dn_n /= static_cast<float>(dim_);
    const float inv_std = cached_inv_std_[r];
    for (std::size_t i = 0; i < dim_; ++i) {
      const float dn = gy[i] * gs[i];
      gx[i] = inv_std * (dn - mean_dn - n[i] * mean_dn_n);
    }
  }
  return grad_in;
}

Embedding::Embedding(std::string name, std::size_t vocab, std::size_t max_len,
                     std::size_t dim, Rng& rng)
    : name_(std::move(name)),
      vocab_(vocab),
      max_len_(max_len),
      dim_(dim),
      token_table_(name_ + ".tok", {vocab, dim}),
      position_table_(name_ + ".pos", {max_len, dim}) {
  normal_init(token_table_.value, 0.02, rng);
  normal_init(position_table_.value, 0.02, rng);
}

Tensor Embedding::forward(const Tensor& ids, bool /*train*/) {
  ADASUM_CHECK_EQ(ids.rank(), 2u);
  const std::size_t batch = ids.dim(0), len = ids.dim(1);
  ADASUM_CHECK_LE(len, max_len_);
  cached_ids_ = ids;
  Tensor y({batch, len, dim_});
  const auto is = ids.span<float>();
  const auto tok = token_table_.value.span<float>();
  const auto pos = position_table_.value.span<float>();
  auto ys = y.span<float>();
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t t = 0; t < len; ++t) {
      const auto id = static_cast<std::size_t>(is[b * len + t]);
      ADASUM_CHECK_LT(id, vocab_);
      float* out = ys.data() + (b * len + t) * dim_;
      const float* trow = tok.data() + id * dim_;
      const float* prow = pos.data() + t * dim_;
      for (std::size_t i = 0; i < dim_; ++i) out[i] = trow[i] + prow[i];
    }
  }
  return y;
}

Tensor Embedding::backward(const Tensor& grad_out) {
  const std::size_t batch = cached_ids_.dim(0), len = cached_ids_.dim(1);
  ADASUM_CHECK_EQ(grad_out.size(), batch * len * dim_);
  const auto is = cached_ids_.span<float>();
  const auto gys = grad_out.span<float>();
  auto gt = token_table_.grad.span<float>();
  auto gp = position_table_.grad.span<float>();
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t t = 0; t < len; ++t) {
      const auto id = static_cast<std::size_t>(is[b * len + t]);
      const float* gy = gys.data() + (b * len + t) * dim_;
      float* trow = gt.data() + id * dim_;
      float* prow = gp.data() + t * dim_;
      for (std::size_t i = 0; i < dim_; ++i) {
        trow[i] += gy[i];
        prow[i] += gy[i];
      }
    }
  }
  // Token ids are leaves; the gradient stops here.
  return Tensor(cached_ids_.shape());
}

SelfAttention::SelfAttention(std::string name, std::size_t dim, Rng& rng,
                             bool causal)
    : name_(std::move(name)),
      dim_(dim),
      causal_(causal),
      wq_(name_ + ".wq", {dim, dim}),
      wk_(name_ + ".wk", {dim, dim}),
      wv_(name_ + ".wv", {dim, dim}),
      wo_(name_ + ".wo", {dim, dim}) {
  xavier_init(wq_.value, dim, dim, rng);
  xavier_init(wk_.value, dim, dim, rng);
  xavier_init(wv_.value, dim, dim, rng);
  xavier_init(wo_.value, dim, dim, rng);
}

Tensor SelfAttention::forward(const Tensor& x, bool /*train*/) {
  ADASUM_CHECK_EQ(x.rank(), 3u);
  ADASUM_CHECK_EQ(x.dim(2), dim_);
  const std::size_t batch = x.dim(0), len = x.dim(1);
  cached_x_ = x;
  cached_q_ = Tensor({batch, len, dim_});
  cached_k_ = Tensor({batch, len, dim_});
  cached_v_ = Tensor({batch, len, dim_});
  cached_attn_ = Tensor({batch, len, len});
  cached_context_ = Tensor({batch, len, dim_});
  Tensor y({batch, len, dim_});

  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(dim_));
  const float* xs = x.span<float>().data();
  float* qs = cached_q_.span<float>().data();
  float* ks = cached_k_.span<float>().data();
  float* vs = cached_v_.span<float>().data();
  float* as = cached_attn_.span<float>().data();
  float* cs = cached_context_.span<float>().data();
  float* ys = y.span<float>().data();

  for (std::size_t b = 0; b < batch; ++b) {
    const float* xb = xs + b * len * dim_;
    float* qb = qs + b * len * dim_;
    float* kb = ks + b * len * dim_;
    float* vb = vs + b * len * dim_;
    float* ab = as + b * len * len;
    float* cb = cs + b * len * dim_;
    matmul_bt(xb, wq_.value.span<float>().data(), qb, len, dim_, dim_);
    matmul_bt(xb, wk_.value.span<float>().data(), kb, len, dim_, dim_);
    matmul_bt(xb, wv_.value.span<float>().data(), vb, len, dim_, dim_);

    // Scores + row softmax (with optional causal mask).
    for (std::size_t t = 0; t < len; ++t) {
      float* row = ab + t * len;
      const std::size_t limit = causal_ ? t + 1 : len;
      float maxv = -std::numeric_limits<float>::infinity();
      for (std::size_t u = 0; u < limit; ++u) {
        float s = 0.0f;
        const float* qrow = qb + t * dim_;
        const float* krow = kb + u * dim_;
        for (std::size_t i = 0; i < dim_; ++i) s += qrow[i] * krow[i];
        row[u] = s * inv_sqrt_d;
        maxv = std::max(maxv, row[u]);
      }
      float denom = 0.0f;
      for (std::size_t u = 0; u < limit; ++u) {
        row[u] = std::exp(row[u] - maxv);
        denom += row[u];
      }
      for (std::size_t u = 0; u < limit; ++u) row[u] /= denom;
      for (std::size_t u = limit; u < len; ++u) row[u] = 0.0f;
    }
    matmul(ab, vb, cb, len, len, dim_);
    matmul_bt(cb, wo_.value.span<float>().data(), ys + b * len * dim_, len,
              dim_, dim_);
  }
  return y;
}

Tensor SelfAttention::backward(const Tensor& grad_out) {
  const std::size_t batch = cached_x_.dim(0), len = cached_x_.dim(1);
  ADASUM_CHECK_EQ(grad_out.size(), batch * len * dim_);
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(dim_));

  Tensor grad_in(cached_x_.shape());
  std::vector<float> dc(len * dim_), da(len * len), ds(len * len),
      dq(len * dim_), dk(len * dim_), dv(len * dim_);

  const float* xs = cached_x_.span<float>().data();
  const float* qs = cached_q_.span<float>().data();
  const float* ks = cached_k_.span<float>().data();
  const float* vs = cached_v_.span<float>().data();
  const float* as = cached_attn_.span<float>().data();
  const float* cs = cached_context_.span<float>().data();
  const float* gys = grad_out.span<float>().data();
  float* gxs = grad_in.span<float>().data();

  for (std::size_t b = 0; b < batch; ++b) {
    const float* xb = xs + b * len * dim_;
    const float* qb = qs + b * len * dim_;
    const float* kb = ks + b * len * dim_;
    const float* vb = vs + b * len * dim_;
    const float* ab = as + b * len * len;
    const float* cb = cs + b * len * dim_;
    const float* gy = gys + b * len * dim_;
    float* gx = gxs + b * len * dim_;

    // Output projection: y = c Wo^T.
    matmul_at(gy, cb, wo_.grad.span<float>().data(), len, dim_, dim_,
              /*accumulate=*/true);
    matmul(gy, wo_.value.span<float>().data(), dc.data(), len, dim_, dim_);

    // Context: c = a v.
    matmul_bt(dc.data(), vb, da.data(), len, dim_, len);
    matmul_at(ab, dc.data(), dv.data(), len, len, dim_);

    // Softmax backward per row.
    for (std::size_t t = 0; t < len; ++t) {
      const float* arow = ab + t * len;
      const float* darow = da.data() + t * len;
      float* dsrow = ds.data() + t * len;
      float dot = 0.0f;
      for (std::size_t u = 0; u < len; ++u) dot += arow[u] * darow[u];
      for (std::size_t u = 0; u < len; ++u)
        dsrow[u] = arow[u] * (darow[u] - dot) * inv_sqrt_d;
    }

    // Scores: s = q k^T (scaling folded into ds above).
    matmul(ds.data(), kb, dq.data(), len, len, dim_);
    matmul_at(ds.data(), qb, dk.data(), len, len, dim_);

    // Projections: q = x Wq^T etc.
    matmul_at(dq.data(), xb, wq_.grad.span<float>().data(), len, dim_, dim_,
              true);
    matmul_at(dk.data(), xb, wk_.grad.span<float>().data(), len, dim_, dim_,
              true);
    matmul_at(dv.data(), xb, wv_.grad.span<float>().data(), len, dim_, dim_,
              true);
    matmul(dq.data(), wq_.value.span<float>().data(), gx, len, dim_, dim_);
    matmul(dk.data(), wk_.value.span<float>().data(), gx, len, dim_, dim_,
           /*accumulate=*/true);
    matmul(dv.data(), wv_.value.span<float>().data(), gx, len, dim_, dim_,
           true);
  }
  return grad_in;
}

std::vector<Parameter*> SelfAttention::parameters() {
  return {&wq_, &wk_, &wv_, &wo_};
}

}  // namespace adasum::nn
