#include "nn/models.h"

#include "nn/conv.h"
#include "nn/linear.h"
#include "nn/transformer.h"

namespace adasum::nn {

std::unique_ptr<Sequential> make_mlp(const std::vector<std::size_t>& dims,
                                     Rng& rng, const std::string& name) {
  ADASUM_CHECK_GE(dims.size(), 2u);
  auto net = std::make_unique<Sequential>(name);
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    const bool last = i + 2 == dims.size();
    net->emplace<Linear>(name + ".fc" + std::to_string(i), dims[i],
                         dims[i + 1], rng, /*xavier=*/last);
    if (!last) net->emplace<ReLU>(name + ".relu" + std::to_string(i));
  }
  return net;
}

std::unique_ptr<Sequential> make_lenet5(std::size_t num_classes, Rng& rng,
                                        bool relu, std::size_t input_hw) {
  ADASUM_CHECK_GE(input_hw, 14u);
  auto net = std::make_unique<Sequential>("lenet5");
  auto act = [&](const std::string& n) -> std::unique_ptr<Layer> {
    if (relu) return std::make_unique<ReLU>(n);
    return std::make_unique<Tanh>(n);
  };
  // conv1 (pad 2, k5) preserves resolution; pool halves; conv2 (k5) shrinks
  // by 4; pool halves again: 28 -> 5x5, 16 -> 2x2.
  const std::size_t after = (input_hw / 2 - 4) / 2;
  net->emplace<Conv2d>("conv1", 1, 6, 5, rng, 1, 2);
  net->add(act("act1"));
  net->emplace<MaxPool2d>("pool1", 2);
  net->emplace<Conv2d>("conv2", 6, 16, 5, rng);
  net->add(act("act2"));
  net->emplace<MaxPool2d>("pool2", 2);
  net->emplace<Flatten>("flatten");
  net->emplace<Linear>("fc1", 16 * after * after, 120, rng);
  net->add(act("act3"));
  net->emplace<Linear>("fc2", 120, 84, rng);
  net->add(act("act4"));
  net->emplace<Linear>("fc3", 84, num_classes, rng, /*xavier=*/true);
  return net;
}

namespace {

std::unique_ptr<Layer> residual_conv_block(const std::string& name,
                                           std::size_t channels, Rng& rng) {
  auto body = std::make_unique<Sequential>(name + ".body");
  body->emplace<Conv2d>(name + ".conv1", channels, channels, 3, rng, 1, 1);
  body->emplace<ReLU>(name + ".relu");
  body->emplace<Conv2d>(name + ".conv2", channels, channels, 3, rng, 1, 1);
  return std::make_unique<Residual>(name, std::move(body));
}

}  // namespace

std::unique_ptr<Sequential> make_resnet_tiny(std::size_t in_channels,
                                             std::size_t num_classes,
                                             Rng& rng, int blocks,
                                             std::size_t width) {
  auto net = std::make_unique<Sequential>("resnet_tiny");
  net->emplace<Conv2d>("stem", in_channels, width, 3, rng, 1, 1);
  net->emplace<ReLU>("stem.relu");
  for (int b = 0; b < blocks; ++b) {
    net->add(residual_conv_block("block1_" + std::to_string(b), width, rng));
    net->emplace<ReLU>("block1_" + std::to_string(b) + ".out_relu");
  }
  net->emplace<MaxPool2d>("pool", 2);
  for (int b = 0; b < blocks; ++b) {
    net->add(residual_conv_block("block2_" + std::to_string(b), width, rng));
    net->emplace<ReLU>("block2_" + std::to_string(b) + ".out_relu");
  }
  net->emplace<GlobalAvgPool>("gap");
  net->emplace<Linear>("head", width, num_classes, rng, /*xavier=*/true);
  return net;
}

std::unique_ptr<Sequential> make_tiny_bert(const TinyBertConfig& config,
                                           Rng& rng) {
  auto net = std::make_unique<Sequential>("tiny_bert");
  net->emplace<Embedding>("embed", config.vocab, config.max_len, config.dim,
                          rng);
  for (int l = 0; l < config.layers; ++l) {
    const std::string prefix = "layer" + std::to_string(l);
    {
      auto body = std::make_unique<Sequential>(prefix + ".attn_body");
      body->emplace<LayerNorm>(prefix + ".ln1", config.dim);
      body->emplace<SelfAttention>(prefix + ".attn", config.dim, rng,
                                   /*causal=*/true);
      if (config.dropout > 0.0)
        body->emplace<Dropout>(prefix + ".attn_drop", config.dropout,
                               rng.fork(1000 + static_cast<std::uint64_t>(l)));
      net->emplace<Residual>(prefix + ".attn_res", std::move(body));
    }
    {
      auto body = std::make_unique<Sequential>(prefix + ".ffn_body");
      body->emplace<LayerNorm>(prefix + ".ln2", config.dim);
      body->emplace<Linear>(prefix + ".ffn1", config.dim, config.ffn_dim, rng);
      body->emplace<Gelu>(prefix + ".gelu");
      body->emplace<Linear>(prefix + ".ffn2", config.ffn_dim, config.dim, rng,
                            /*xavier=*/true);
      if (config.dropout > 0.0)
        body->emplace<Dropout>(prefix + ".ffn_drop", config.dropout,
                               rng.fork(2000 + static_cast<std::uint64_t>(l)));
      net->emplace<Residual>(prefix + ".ffn_res", std::move(body));
    }
  }
  net->emplace<LayerNorm>("final_ln", config.dim);
  net->emplace<Linear>("lm_head", config.dim, config.vocab, rng,
                       /*xavier=*/true);
  return net;
}

}  // namespace adasum::nn
