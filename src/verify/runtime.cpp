#include "verify/runtime.h"

#include <algorithm>
#include <thread>

#include "analysis/trace_format.h"
#include "base/check.h"

namespace adasum::verify {

namespace {

thread_local Runtime* g_tls_runtime = nullptr;
thread_local int g_tls_tid = -1;

bool acquire_class(std::memory_order mo) {
  return mo == std::memory_order_acquire || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst ||
         // consume is treated as acquire (conservative; no dependency
         // tracking — same promotion every compiler performs today).
         mo == std::memory_order_consume;
}

bool release_class(std::memory_order mo) {
  return mo == std::memory_order_release || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst;
}

const char* mo_name(std::memory_order mo) {
  switch (mo) {
    case std::memory_order_relaxed: return "relaxed";
    case std::memory_order_consume: return "consume";
    case std::memory_order_acquire: return "acquire";
    case std::memory_order_release: return "release";
    case std::memory_order_acq_rel: return "acq_rel";
    case std::memory_order_seq_cst: return "seq_cst";
  }
  return "?";
}

// Ops whose grant can change state another thread is spinning on (or, for
// notifies, waiting on). These release spin-blocked threads and reset the
// virtual-timeout hang counter.
bool write_class(OpKind k) {
  switch (k) {
    case OpKind::kAtomicStore:
    case OpKind::kAtomicRmw:
    case OpKind::kMutexUnlock:
    case OpKind::kCvWait:       // performs the atomic mutex release
    case OpKind::kCvWaitTimed:
    case OpKind::kCvNotifyOne:
    case OpKind::kCvNotifyAll:
    case OpKind::kPoint:
      return true;
    default:
      return false;
  }
}

// Vector clock. Thread ids are dense and tiny (schedules run 2-8 threads),
// so a plain vector with implicit-zero tail is the whole story.
struct VC {
  std::vector<std::uint32_t> v;

  std::uint32_t get(int i) const {
    const auto u = static_cast<std::size_t>(i);
    return u < v.size() ? v[u] : 0;
  }
  void set(int i, std::uint32_t x) {
    const auto u = static_cast<std::size_t>(i);
    if (u >= v.size()) v.resize(u + 1, 0);
    v[u] = x;
  }
  void tick(int i) { set(i, get(i) + 1); }
  void join(const VC& o) {
    if (o.v.size() > v.size()) v.resize(o.v.size(), 0);
    for (std::size_t i = 0; i < o.v.size(); ++i)
      v[i] = std::max(v[i], o.v[i]);
  }
  void assign(const VC& o) { v = o.v; }
  void clear() { v.clear(); }
};

}  // namespace

const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::kThreadStart: return "thread-start";
    case OpKind::kThreadExit: return "thread-exit";
    case OpKind::kThreadCreate: return "thread-create";
    case OpKind::kThreadJoin: return "thread-join";
    case OpKind::kAtomicLoad: return "atomic-load";
    case OpKind::kAtomicStore: return "atomic-store";
    case OpKind::kAtomicRmw: return "atomic-rmw";
    case OpKind::kMutexLock: return "mutex-lock";
    case OpKind::kMutexUnlock: return "mutex-unlock";
    case OpKind::kCvWait: return "cv-wait";
    case OpKind::kCvWaitTimed: return "cv-wait-timed";
    case OpKind::kCvNotifyOne: return "cv-notify-one";
    case OpKind::kCvNotifyAll: return "cv-notify-all";
    case OpKind::kSpin: return "spin";
    case OpKind::kPoint: return "point";
    case OpKind::kStoreFence: return "store-fence";
  }
  return "?";
}

std::string Report::render() const {
  std::string out = message;
  out += '\n';
  out += detail;
  if (!trace.empty()) {
    out += analysis::format_block("schedule trace:", trace);
  }
  return out;
}

bool dependent(const Candidate& a, const Candidate& b) {
  if (a.tid == b.tid) return true;
  // Spin pauses carry no state, but a write-class grant releases
  // spin-blocked threads — order them conservatively so sleep sets never
  // prune an enabling difference.
  if ((a.kind == OpKind::kSpin && write_class(b.kind)) ||
      (b.kind == OpKind::kSpin && write_class(a.kind)))
    return true;
  const auto overlaps = [](const Candidate& x, const Candidate& y) {
    return (x.obj != nullptr && (x.obj == y.obj || x.obj == y.obj2)) ||
           (x.obj2 != nullptr && (x.obj2 == y.obj || x.obj2 == y.obj2));
  };
  if (!overlaps(a, b)) return false;
  if (a.kind == OpKind::kAtomicLoad && b.kind == OpKind::kAtomicLoad)
    return false;  // loads of the same atomic commute
  return true;
}

// ---------------------------------------------------------------------------

struct Runtime::ThreadRec {
  enum class St {
    kUnattached,
    kParked,      // announced, awaiting grant (may be ineligible)
    kRunning,     // holds the baton
    kBlockedCv,   // cv wait applied, mutex released
    kSpinBlocked, // exceeded futile-spin threshold
    kExited,
  };

  int tid = -1;
  St st = St::kUnattached;
  Candidate pending{};
  bool has_pending = false;
  bool granted = false;
  bool grant_is_timeout = false;  // timed cv wake reason
  bool wait_applied = false;      // cv wait reached its grant (mutex released)
  bool wait_timed = false;
  const void* wait_cv = nullptr;
  const void* wait_mutex = nullptr;
  int join_target = -1;
  int created_child = -1;
  int futile_spins = 0;
  std::condition_variable park;
  VC clock;
  std::vector<const void*> nt_pending;  // NT stores awaiting sfence
};

struct Runtime::Impl {
  using ThreadRec = Runtime::ThreadRec;
  using St = ThreadRec::St;

  Options opts;
  Chooser chooser;
  Runtime* self = nullptr;

  std::mutex mu;
  std::condition_variable attach_cv;  // thread_create waits for the child
  std::condition_variable abort_cv;   // abort-mode modeled-mutex waits
  std::vector<std::unique_ptr<ThreadRec>> threads;
  int attached = 0;
  bool started = false;
  int running = -1;
  bool abort_mode = false;
  int consecutive_timeouts = 0;

  struct MutexRec {
    int owner = -1;
    VC vc;
  };
  struct CvRec {
    std::deque<int> waiters;  // FIFO wake order
  };
  struct AtomicRec {
    VC rel;  // release clock (cleared by a relaxed store)
  };
  struct Access {
    int tid = -1;
    std::uint32_t clk = 0;
    std::uint64_t at = 0;  // trace line index
    const char* label = nullptr;
  };
  struct PlainRec {
    Access write;
    VC reads;
    std::vector<Access> read_sites;
    bool nt_unfenced = false;
    bool poisoned = false;
    const char* label = nullptr;
  };
  std::unordered_map<const void*, MutexRec> mutexes;
  std::unordered_map<const void*, CvRec> cvs;
  std::unordered_map<const void*, AtomicRec> atomics;
  std::unordered_map<const void*, PlainRec> plains;

  // Symbolic names, assigned in first-touch (grant) order so replayed
  // schedules produce byte-identical traces despite fresh heap addresses.
  std::unordered_map<const void*, std::string> syms;
  int sym_next[4] = {0, 0, 0, 0};  // a(tomic) m(utex) c(v) p(lain)

  struct TraceEntry {
    std::uint64_t step = 0;  // granted-op counter at this line
    int tid = -1;
    std::string text;
  };
  std::vector<TraceEntry> trace;

  ThreadRec& rec(int tid) {
    ADASUM_CHECK_LT(static_cast<std::size_t>(tid), threads.size());
    return *threads[static_cast<std::size_t>(tid)];
  }

  const std::string& sym(const void* obj, char cls) {
    auto it = syms.find(obj);
    if (it != syms.end()) return it->second;
    int idx;
    switch (cls) {
      case 'a': idx = 0; break;
      case 'm': idx = 1; break;
      case 'c': idx = 2; break;
      default: idx = 3; break;
    }
    std::string name(1, cls);
    name += std::to_string(sym_next[idx]++);
    return syms.emplace(obj, std::move(name)).first->second;
  }

  char cls_of(OpKind k) {
    switch (k) {
      case OpKind::kAtomicLoad:
      case OpKind::kAtomicStore:
      case OpKind::kAtomicRmw:
        return 'a';
      case OpKind::kMutexLock:
      case OpKind::kMutexUnlock:
        return 'm';
      case OpKind::kCvWait:
      case OpKind::kCvWaitTimed:
      case OpKind::kCvNotifyOne:
      case OpKind::kCvNotifyAll:
        return 'c';
      default:
        return 'p';
    }
  }

  void trace_op(const Candidate& c) {
    std::string text = op_kind_name(c.kind);
    if (c.obj != nullptr) {
      text += ' ';
      text += sym(c.obj, cls_of(c.kind));
    }
    if (c.kind == OpKind::kAtomicLoad || c.kind == OpKind::kAtomicStore ||
        c.kind == OpKind::kAtomicRmw) {
      text += ' ';
      text += mo_name(c.mo);
    }
    if (c.kind == OpKind::kThreadJoin) {
      text += " T" + std::to_string(rec_of_join_target(c));
    }
    trace.push_back(TraceEntry{self->step_, c.tid, std::move(text)});
  }

  int rec_of_join_target(const Candidate& c) {
    return rec(c.tid).join_target;
  }

  void trace_plain(int tid, const char* what, const std::string& s,
                   const char* label) {
    std::string text(what);
    text += ' ';
    text += s;
    if (label != nullptr) {
      text += " \"";
      text += label;
      text += '"';
    }
    trace.push_back(TraceEntry{self->step_, tid, std::move(text)});
  }

  bool eligible(const ThreadRec& t) {
    if (t.st != St::kParked || !t.has_pending) return false;
    switch (t.pending.kind) {
      case OpKind::kMutexLock:
        return mutexes[t.pending.obj].owner == -1;
      case OpKind::kThreadJoin:
        return rec(t.join_target).st == St::kExited;
      default:
        return true;
    }
  }

  void enter_abort(bool truncated) {
    if (abort_mode) return;
    abort_mode = true;
    if (truncated) self->truncated_ = true;
    for (auto& t : threads)
      if (t) t->park.notify_all();
    abort_cv.notify_all();
    attach_cv.notify_all();
  }

  void report(Report r) {
    if (self->reports_.empty()) {
      r.trace = self->trace_string_locked(*this);
      self->reports_.push_back(std::move(r));
    }
    enter_abort(false);
  }

  std::string thread_state(const ThreadRec& t) {
    switch (t.st) {
      case St::kUnattached: return "not yet attached";
      case St::kRunning: return "running";
      case St::kExited: return "exited";
      case St::kSpinBlocked: return "spin-blocked (futile pause loop)";
      case St::kBlockedCv: {
        std::string s = "blocked in cv ";
        s += t.wait_timed ? "timed wait on " : "wait on ";
        s += sym(t.wait_cv, 'c');
        s += " (mutex ";
        s += sym(t.wait_mutex, 'm');
        s += " released)";
        return s;
      }
      case St::kParked: {
        std::string s = "waiting to run ";
        s += op_kind_name(t.pending.kind);
        if (t.pending.kind == OpKind::kMutexLock) {
          s += ' ';
          s += sym(t.pending.obj, 'm');
          const int owner = mutexes[t.pending.obj].owner;
          if (owner >= 0) s += " (held by T" + std::to_string(owner) + ")";
        } else if (t.pending.kind == OpKind::kThreadJoin) {
          s += " of T" + std::to_string(t.join_target);
        }
        return s;
      }
    }
    return "?";
  }

  std::string all_thread_states() {
    std::string out;
    for (auto& t : threads)
      if (t && t->st != St::kUnattached)
        analysis::append_thread_state(out, t->tid, thread_state(*t));
    return out;
  }

  void grant(ThreadRec& t) {
    t.st = St::kRunning;
    running = t.tid;
    t.granted = true;
    t.park.notify_all();
  }

  void release_spinners() {
    // A write just landed, so NO thread's spinning is futile anymore — reset
    // every counter, not just the blocked threads'. (A spin announced before
    // the write but granted after it must not count toward the threshold:
    // that ordering is a scheduling accident, and counting it produces false
    // livelocks when the writer then exits.)
    for (auto& tp : threads) {
      if (!tp) continue;
      ThreadRec& t = *tp;
      t.futile_spins = 0;
      if (t.st != St::kSpinBlocked) continue;
      t.st = St::kParked;
      t.pending = Candidate{t.tid, OpKind::kSpin, nullptr,
                            std::memory_order_seq_cst};
      t.has_pending = true;
    }
  }

  void poison_pending_nt(ThreadRec& t) {
    for (const void* addr : t.nt_pending) {
      PlainRec& p = plains[addr];
      if (p.nt_unfenced) {
        p.nt_unfenced = false;
        p.poisoned = true;
      }
    }
    t.nt_pending.clear();
  }

  // Applies the granted op's modeled/auditor effects. Returns true when the
  // thread is now running (was granted), false when the op left it blocked.
  bool apply(const Candidate& c) {
    ThreadRec& t = rec(c.tid);
    t.has_pending = false;
    ++self->step_;
    trace_op(c);
    bool runs = true;

    switch (c.kind) {
      case OpKind::kThreadStart:
        grant(t);
        break;
      case OpKind::kThreadExit:
        t.st = St::kExited;
        t.granted = true;
        t.park.notify_all();
        runs = false;  // it free-runs off the end; pick another thread
        break;
      case OpKind::kThreadCreate: {
        const int child = static_cast<int>(threads.size());
        threads.push_back(std::make_unique<ThreadRec>());
        threads.back()->tid = child;
        t.created_child = child;
        grant(t);
        break;
      }
      case OpKind::kThreadJoin:
        t.clock.join(rec(t.join_target).clock);
        grant(t);
        break;
      case OpKind::kAtomicLoad:
        if (acquire_class(c.mo)) t.clock.join(atomics[c.obj].rel);
        grant(t);
        break;
      case OpKind::kAtomicStore: {
        AtomicRec& a = atomics[c.obj];
        // Release sequence: a release store starts one (publishing the
        // writer's clock); a relaxed store REPLACES the value without
        // release semantics, so readers of the new value get nothing.
        if (release_class(c.mo)) {
          a.rel.assign(t.clock);
        } else {
          a.rel.clear();
        }
        poison_pending_nt(t);
        grant(t);
        break;
      }
      case OpKind::kAtomicRmw: {
        AtomicRec& a = atomics[c.obj];
        if (acquire_class(c.mo)) t.clock.join(a.rel);
        // An RMW joins the release sequence: even a relaxed RMW preserves
        // the existing release clock (it does not publish its own).
        if (release_class(c.mo)) {
          a.rel.join(t.clock);
          poison_pending_nt(t);
        }
        grant(t);
        break;
      }
      case OpKind::kMutexLock: {
        MutexRec& m = mutexes[c.obj];
        ADASUM_CHECK_EQ(m.owner, -1);
        m.owner = c.tid;
        t.clock.join(m.vc);
        grant(t);
        break;
      }
      case OpKind::kMutexUnlock: {
        MutexRec& m = mutexes[c.obj];
        m.owner = -1;
        m.vc.assign(t.clock);
        poison_pending_nt(t);
        grant(t);
        break;
      }
      case OpKind::kCvWait:
      case OpKind::kCvWaitTimed: {
        // The atomic release-and-block: the mutex unlocks at THIS grant, so
        // a notifier that was chosen between the waiter's predicate check
        // (before announce) and this grant can still miss the waiter —
        // faithful pthread semantics, the lost-wakeup window included.
        MutexRec& m = mutexes[t.wait_mutex];
        ADASUM_CHECK_EQ(m.owner, c.tid);
        m.owner = -1;
        m.vc.assign(t.clock);
        poison_pending_nt(t);
        cvs[t.wait_cv].waiters.push_back(c.tid);
        t.st = St::kBlockedCv;
        t.wait_applied = true;
        t.wait_timed = c.kind == OpKind::kCvWaitTimed;
        runs = false;
        break;
      }
      case OpKind::kCvNotifyOne:
      case OpKind::kCvNotifyAll: {
        CvRec& cv = cvs[c.obj];
        const std::size_t n =
            c.kind == OpKind::kCvNotifyAll ? cv.waiters.size()
                                           : std::min<std::size_t>(
                                                 1, cv.waiters.size());
        for (std::size_t i = 0; i < n; ++i) {
          wake_waiter(cv.waiters.front(), /*timeout=*/false);
          cv.waiters.pop_front();
        }
        grant(t);
        break;
      }
      case OpKind::kSpin:
        ++t.futile_spins;
        if (t.futile_spins >= opts.spin_block_threshold) {
          t.st = St::kSpinBlocked;
          runs = false;
        } else {
          grant(t);
        }
        break;
      case OpKind::kPoint:
        grant(t);
        break;
      case OpKind::kStoreFence:
        for (const void* addr : t.nt_pending)
          plains[addr].nt_unfenced = false;
        t.nt_pending.clear();
        grant(t);
        break;
    }

    if (write_class(c.kind)) {
      release_spinners();
      consecutive_timeouts = 0;
      t.futile_spins = 0;
    }
    t.clock.tick(c.tid);
    return runs;
  }

  void wake_waiter(int tid, bool timeout) {
    ThreadRec& w = rec(tid);
    ADASUM_CHECK(w.st == St::kBlockedCv);
    w.st = St::kParked;
    w.grant_is_timeout = timeout;
    // The wake re-enters through a mutex reacquire, like a real cv.
    w.pending = Candidate{tid, OpKind::kMutexLock, w.wait_mutex,
                          std::memory_order_seq_cst};
    w.has_pending = true;
  }

  // Core dispatch loop: runs inside whichever thread just announced, while
  // no thread holds the baton. Leaves with either one thread granted, the
  // whole schedule finished, or abort mode entered.
  void dispatch() {
    if (!started || running != -1 || abort_mode) return;
    std::vector<Candidate> cands;
    for (;;) {
      if (self->step_ >= opts.max_steps) {
        // Budget exhausted — not a defect, but the schedule cannot continue
        // under control. Free-run the rest.
        enter_abort(/*truncated=*/true);
        return;
      }
      cands.clear();
      for (auto& tp : threads) {
        if (!tp) continue;
        if (eligible(*tp)) {
          Candidate c = tp->pending;
          cands.push_back(c);
        }
      }
      std::sort(cands.begin(), cands.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.tid < b.tid;
                });
      if (!cands.empty()) {
        // The chooser sees singleton sets too: DFS sleep-set propagation
        // must observe every applied op, not just branching points.
        std::size_t idx = chooser(cands, self->step_);
        if (idx >= cands.size()) idx = 0;
        if (cands.size() > 1) {
          self->decisions_.push_back(
              Decision{cands, idx, self->step_});
        }
        if (apply(cands[idx])) return;  // someone is running now
        continue;                       // the op blocked its thread; repick
      }

      // Quiescence: nobody is eligible.
      bool any_live = false, any_timed = false, any_untimed = false,
           any_spin = false, any_parked = false;
      int earliest_timed = -1;
      for (auto& tp : threads) {
        if (!tp || tp->st == St::kUnattached || tp->st == St::kExited)
          continue;
        any_live = true;
        if (tp->st == St::kBlockedCv) {
          if (tp->wait_timed) {
            any_timed = true;
            if (earliest_timed < 0) earliest_timed = tp->tid;
          } else {
            any_untimed = true;
          }
        } else if (tp->st == St::kSpinBlocked) {
          any_spin = true;
        } else if (tp->st == St::kParked) {
          any_parked = true;  // ineligible: mutex held / join target alive
        }
      }
      if (!any_live) return;  // schedule complete

      if (any_timed) {
        // Virtual timeout: no runnable thread can produce the event a timed
        // waiter sleeps on, so time "passes". Deterministic: lowest tid.
        if (++consecutive_timeouts > opts.hang_timeout_cap) {
          Report r;
          r.kind = Report::Kind::kHang;
          r.message =
              "hang: " + std::to_string(consecutive_timeouts) +
              " consecutive timed-wait timeouts with no write progress";
          r.detail = all_thread_states();
          report(std::move(r));
          return;
        }
        // Remove from its cv's waiter queue, then requeue as a reacquire.
        ThreadRec& w = rec(earliest_timed);
        auto& q = cvs[w.wait_cv].waiters;
        q.erase(std::remove(q.begin(), q.end(), earliest_timed), q.end());
        wake_waiter(earliest_timed, /*timeout=*/true);
        continue;
      }
      if (any_untimed || any_parked) {
        Report r;
        r.kind = Report::Kind::kDeadlock;
        r.message = "deadlock: every live thread is blocked";
        r.detail = all_thread_states();
        report(std::move(r));
        return;
      }
      if (any_spin) {
        Report r;
        r.kind = Report::Kind::kLivelock;
        r.message =
            "livelock: only spin-blocked threads remain (no write-class op "
            "can release them)";
        r.detail = all_thread_states();
        report(std::move(r));
        return;
      }
      return;
    }
  }

  // Announce `c` for the calling (attached, running) thread and block until
  // granted. Returns false when abort mode interrupted before the grant.
  bool announce_and_wait(ThreadRec& t, Candidate c,
                         std::unique_lock<std::mutex>& lk) {
    t.pending = c;
    t.has_pending = true;
    t.granted = false;
    t.wait_applied = false;
    if (t.st == St::kRunning) {
      t.st = St::kParked;
      running = -1;
    }
    dispatch();
    t.park.wait(lk, [&]() { return t.granted || abort_mode; });
    const bool granted = t.granted;
    t.granted = false;
    return granted;
  }

  // ---- abort-mode (free-running teardown) modeled mutex ----
  void abort_lock(int tid, const void* m, std::unique_lock<std::mutex>& lk) {
    MutexRec& mr = mutexes[m];
    abort_cv.wait(lk, [&]() { return mr.owner == -1; });
    mr.owner = tid;
  }
  void abort_unlock(const void* m) {
    mutexes[m].owner = -1;
    abort_cv.notify_all();
  }
};

// ---------------------------------------------------------------------------

Runtime::Runtime(const Options& opts, Chooser chooser)
    : impl_(std::make_unique<Impl>()) {
  impl_->opts = opts;
  impl_->chooser = std::move(chooser);
  impl_->self = this;
  ADASUM_CHECK_GE(opts.expected_threads, 1);
  for (int i = 0; i < opts.expected_threads; ++i) {
    impl_->threads.push_back(std::make_unique<ThreadRec>());
    impl_->threads.back()->tid = i;
  }
}

Runtime::~Runtime() = default;

bool Runtime::aborted() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->abort_mode;
}

std::string Runtime::trace_string() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return trace_string_locked(*impl_);
}

std::string Runtime::trace_string_locked(Impl& impl) const {
  std::string out;
  for (const auto& e : impl.trace)
    analysis::append_trace_line(out, e.step, e.tid, e.text);
  return out;
}

void Runtime::attach(int tid) {
  std::unique_lock<std::mutex> lk(impl_->mu);
  Impl& im = *impl_;
  ADASUM_CHECK_LT(static_cast<std::size_t>(tid), im.threads.size());
  ThreadRec& t = im.rec(tid);
  ADASUM_CHECK(t.st == ThreadRec::St::kUnattached);
  g_tls_runtime = this;
  g_tls_tid = tid;
  ++im.attached;
  im.attach_cv.notify_all();
  if (im.abort_mode) {
    t.st = ThreadRec::St::kRunning;  // free-run
    return;
  }
  t.st = ThreadRec::St::kParked;
  if (!im.started && im.attached >= im.opts.expected_threads)
    im.started = true;
  im.announce_and_wait(
      t, Candidate{tid, OpKind::kThreadStart, nullptr,
                   std::memory_order_seq_cst},
      lk);
}

void Runtime::detach() {
  std::unique_lock<std::mutex> lk(impl_->mu);
  Impl& im = *impl_;
  ThreadRec& t = im.rec(g_tls_tid);
  if (im.abort_mode) {
    t.st = ThreadRec::St::kExited;
    im.abort_cv.notify_all();
  } else {
    im.announce_and_wait(
        t, Candidate{t.tid, OpKind::kThreadExit, nullptr,
                     std::memory_order_seq_cst},
        lk);
    // Exit grants never carry the baton; dispatch already moved on.
  }
  g_tls_runtime = nullptr;
  g_tls_tid = -1;
}

void Runtime::op_atomic(const void* addr, OpKind kind, std::memory_order mo) {
  std::unique_lock<std::mutex> lk(impl_->mu);
  Impl& im = *impl_;
  if (im.abort_mode) return;  // free-run: the real op happens uninstrumented
  ThreadRec& t = im.rec(g_tls_tid);
  im.announce_and_wait(t, Candidate{t.tid, kind, addr, mo}, lk);
}

void Runtime::mutex_lock(const void* m) {
  std::unique_lock<std::mutex> lk(impl_->mu);
  Impl& im = *impl_;
  ThreadRec& t = im.rec(g_tls_tid);
  if (im.abort_mode) {
    im.abort_lock(t.tid, m, lk);
    return;
  }
  if (!im.announce_and_wait(t,
                            Candidate{t.tid, OpKind::kMutexLock, m,
                                      std::memory_order_seq_cst},
                            lk)) {
    // Abort interrupted the wait before the grant: take it the free-run way.
    im.abort_lock(t.tid, m, lk);
  }
}

void Runtime::mutex_unlock(const void* m) {
  std::unique_lock<std::mutex> lk(impl_->mu);
  Impl& im = *impl_;
  ThreadRec& t = im.rec(g_tls_tid);
  if (im.abort_mode) {
    im.abort_unlock(m);
    return;
  }
  if (!im.announce_and_wait(t,
                            Candidate{t.tid, OpKind::kMutexUnlock, m,
                                      std::memory_order_seq_cst},
                            lk)) {
    im.abort_unlock(m);
  }
}

void Runtime::cv_wait(const void* cv, const void* m) { (void)cv_wait_impl(cv, m, false); }

bool Runtime::cv_wait_timed(const void* cv, const void* m) {
  return cv_wait_impl(cv, m, true);
}

bool Runtime::cv_wait_impl(const void* cv, const void* m, bool timed) {
  std::unique_lock<std::mutex> lk(impl_->mu);
  Impl& im = *impl_;
  ThreadRec& t = im.rec(g_tls_tid);
  if (im.abort_mode) {
    // Spurious wake: release, "wake" instantly, reacquire. Predicate loops
    // re-check their (now abort-satisfiable) conditions.
    im.abort_unlock(m);
    lk.unlock();
    std::this_thread::yield();
    lk.lock();
    im.abort_lock(t.tid, m, lk);
    return timed;  // report timed waits as timeouts during teardown
  }
  t.wait_cv = cv;
  t.wait_mutex = m;
  t.grant_is_timeout = false;
  const bool granted = im.announce_and_wait(
      t,
      Candidate{t.tid, timed ? OpKind::kCvWaitTimed : OpKind::kCvWait, cv,
                std::memory_order_seq_cst, m},
      lk);
  if (!granted) {
    // Abort hit mid-wait. If the wait was applied the mutex is released —
    // reacquire; if not, we still own it and simply return (spurious).
    if (t.wait_applied) {
      auto& q = im.cvs[cv].waiters;
      q.erase(std::remove(q.begin(), q.end(), t.tid), q.end());
      im.abort_lock(t.tid, m, lk);
    }
    return timed;
  }
  return t.grant_is_timeout;
}

void Runtime::cv_notify(const void* cv, bool all) {
  std::unique_lock<std::mutex> lk(impl_->mu);
  Impl& im = *impl_;
  if (im.abort_mode) return;  // every blocked wait already woke spuriously
  ThreadRec& t = im.rec(g_tls_tid);
  im.announce_and_wait(
      t,
      Candidate{t.tid,
                all ? OpKind::kCvNotifyAll : OpKind::kCvNotifyOne, cv,
                std::memory_order_seq_cst},
      lk);
}

void Runtime::point() {
  std::unique_lock<std::mutex> lk(impl_->mu);
  Impl& im = *impl_;
  if (im.abort_mode) return;
  ThreadRec& t = im.rec(g_tls_tid);
  im.announce_and_wait(t,
                       Candidate{t.tid, OpKind::kPoint, nullptr,
                                 std::memory_order_seq_cst},
                       lk);
}

void Runtime::spin_pause() {
  std::unique_lock<std::mutex> lk(impl_->mu);
  Impl& im = *impl_;
  if (im.abort_mode) {
    lk.unlock();
    std::this_thread::yield();
    return;
  }
  ThreadRec& t = im.rec(g_tls_tid);
  im.announce_and_wait(t,
                       Candidate{t.tid, OpKind::kSpin, nullptr,
                                 std::memory_order_seq_cst},
                       lk);
}

void Runtime::store_fence() {
  std::unique_lock<std::mutex> lk(impl_->mu);
  Impl& im = *impl_;
  if (im.abort_mode) return;
  ThreadRec& t = im.rec(g_tls_tid);
  im.announce_and_wait(t,
                       Candidate{t.tid, OpKind::kStoreFence, nullptr,
                                 std::memory_order_seq_cst},
                       lk);
}

void Runtime::plain_access(const void* addr, bool write, bool nt,
                           const char* label) {
  std::unique_lock<std::mutex> lk(impl_->mu);
  Impl& im = *impl_;
  if (im.abort_mode) return;
  ThreadRec& t = im.rec(g_tls_tid);
  Impl::PlainRec& p = im.plains[addr];
  if (p.label == nullptr) p.label = label;
  const std::string& s = im.sym(addr, 'p');
  im.trace_plain(t.tid, nt ? "nt-write" : (write ? "plain-write"
                                                 : "plain-read"),
                 s, label);
  const std::uint64_t here = im.trace.size() - 1;

  const auto site = [&](const Impl::Access& a) {
    std::string d = "T" + std::to_string(a.tid);
    d += " at trace line #" + std::to_string(a.at);
    if (a.label != nullptr) {
      d += " (\"";
      d += a.label;
      d += "\")";
    }
    return d;
  };
  const auto race = [&](const char* what, const Impl::Access& prev) {
    Report r;
    r.kind = Report::Kind::kDataRace;
    r.message = "data race on ";
    r.message += s;
    if (label != nullptr) {
      r.message += " (\"";
      r.message += label;
      r.message += "\")";
    }
    r.detail = "  earlier ";
    r.detail += what;
    r.detail += ": " + site(prev) + "\n  racing ";
    r.detail += nt ? "nt-write" : (write ? "write" : "read");
    r.detail += ": T" + std::to_string(t.tid) + " at trace line #" +
                std::to_string(here) + "\n";
    im.report(std::move(r));
  };

  if (write) {
    if (p.write.tid >= 0 && p.write.clk > t.clock.get(p.write.tid)) {
      race("write", p.write);
      return;
    }
    for (int u = 0; u < static_cast<int>(p.reads.v.size()); ++u) {
      if (u != t.tid && p.reads.get(u) > 0 &&
          p.reads.get(u) > t.clock.get(u)) {
        const Impl::Access prev =
            static_cast<std::size_t>(u) < p.read_sites.size()
                ? p.read_sites[static_cast<std::size_t>(u)]
                : Impl::Access{u, p.reads.get(u), 0, nullptr};
        race("read", prev);
        return;
      }
    }
    p.write = Impl::Access{t.tid, t.clock.get(t.tid) + 1, here, label};
    p.reads.clear();
    p.read_sites.clear();
    if (nt) {
      p.nt_unfenced = true;
      t.nt_pending.push_back(addr);
    } else {
      p.poisoned = false;
    }
  } else {
    if (p.write.tid >= 0 && p.write.tid != t.tid &&
        p.write.clk > t.clock.get(p.write.tid)) {
      race("write", p.write);
      return;
    }
    if (p.poisoned && p.write.tid >= 0 && p.write.tid != t.tid) {
      Report r;
      r.kind = Report::Kind::kUnfencedPublish;
      r.message = "unfenced non-temporal publish of ";
      r.message += s;
      if (label != nullptr) {
        r.message += " (\"";
        r.message += label;
        r.message += '"';
        r.message += ')';
      }
      r.detail = "  NT write: " + site(p.write) +
                 " was published (release-class write) without an "
                 "intervening sfence\n  cross-thread read: T" +
                 std::to_string(t.tid) + " at trace line #" +
                 std::to_string(here) + "\n";
      im.report(std::move(r));
      return;
    }
    p.reads.set(t.tid, t.clock.get(t.tid) + 1);
    if (p.read_sites.size() <= static_cast<std::size_t>(t.tid))
      p.read_sites.resize(static_cast<std::size_t>(t.tid) + 1);
    p.read_sites[static_cast<std::size_t>(t.tid)] =
        Impl::Access{t.tid, t.clock.get(t.tid) + 1, here, label};
  }
  t.clock.tick(t.tid);
}

int Runtime::thread_create() {
  std::unique_lock<std::mutex> lk(impl_->mu);
  Impl& im = *impl_;
  ThreadRec& t = im.rec(g_tls_tid);
  if (im.abort_mode) {
    const int child = static_cast<int>(im.threads.size());
    im.threads.push_back(std::make_unique<ThreadRec>());
    im.threads.back()->tid = child;
    return child;
  }
  t.created_child = -1;
  im.announce_and_wait(t,
                       Candidate{t.tid, OpKind::kThreadCreate, nullptr,
                                 std::memory_order_seq_cst},
                       lk);
  if (t.created_child < 0) {
    // Abort interrupted before the grant reserved a tid.
    const int child = static_cast<int>(im.threads.size());
    im.threads.push_back(std::make_unique<ThreadRec>());
    im.threads.back()->tid = child;
    return child;
  }
  return t.created_child;
}

void Runtime::await_attached(int tid) {
  std::unique_lock<std::mutex> lk(impl_->mu);
  Impl& im = *impl_;
  // Deterministic spawn: the creator keeps the baton but does not proceed
  // until the child has registered, so the runnable set grows at a fixed
  // point of the schedule rather than whenever the OS ran the new thread.
  im.attach_cv.wait(lk, [&]() {
    return im.abort_mode ||
           im.rec(tid).st != ThreadRec::St::kUnattached;
  });
}

void Runtime::thread_join(int tid) {
  std::unique_lock<std::mutex> lk(impl_->mu);
  Impl& im = *impl_;
  if (im.abort_mode) return;  // the real join below the hook still happens
  ThreadRec& t = im.rec(g_tls_tid);
  t.join_target = tid;
  im.announce_and_wait(t,
                       Candidate{t.tid, OpKind::kThreadJoin,
                                 im.threads[static_cast<std::size_t>(tid)]
                                     .get(),
                                 std::memory_order_seq_cst},
                       lk);
}

ThreadScope::ThreadScope(Runtime& rt, int tid) : rt_(rt) { rt_.attach(tid); }
ThreadScope::~ThreadScope() { rt_.detach(); }

Runtime* current() { return g_tls_runtime; }

}  // namespace adasum::verify
