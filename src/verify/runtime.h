// Controlled scheduler + happens-before auditor (DESIGN.md §16).
//
// A Runtime serializes a fixed set of "world" threads at their sync points:
// every operation on a sync::atomic / sync::mutex / sync::condition_variable
// (verify/sync.h) announces itself, parks, and only executes once the
// scheduler grants it. Exactly one thread runs between grants, so an entire
// schedule is a deterministic function of the sequence of choices — which is
// what lets the explorer (verify/explore.h) enumerate interleavings
// exhaustively (DFS + sleep sets) or sample them (PCT priorities), and lets
// a failing schedule replay bit-for-bit from its seed.
//
// There is no separate scheduler thread: dispatch runs inside whichever
// thread just announced (the "baton" pattern). Mutexes and condition
// variables are MODELED — the real std primitives underneath are never
// locked in controlled mode — so a blocked thread is a scheduler state, not
// an OS wait, and a lost-wakeup bug surfaces as a deterministic deadlock
// report instead of a flaky hang. cv waits release their mutex atomically at
// the grant, faithfully reproducing pthread semantics: a lock-free notifier
// CAN land in the window between a waiter's predicate check and its block,
// which is exactly the bug class the Mailbox abort-notify mutation exercises.
//
// The auditor runs at grant time: per-thread vector clocks, per-atomic
// release clocks (with release-sequence rules: a relaxed store breaks the
// sequence, a relaxed RMW continues it), per-mutex clocks, and
// FastTrack-style checks on the plain accesses product code marks with
// ADASUM_VERIFY_PLAIN_READ/WRITE. Non-temporal stores are tracked per
// thread: publishing (any release-class write) while an NT store is not yet
// sfenced poisons the region, and a cross-thread read of a poisoned region
// reports — that is an ordering bug real fences hide from pure
// happens-before analysis.
//
// Every object is named by a symbolic id assigned in first-touch order of
// the schedule, so traces and reports are identical across replays even
// though heap addresses differ.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace adasum::verify {

enum class OpKind : std::uint8_t {
  kThreadStart,
  kThreadExit,
  kThreadCreate,
  kThreadJoin,
  kAtomicLoad,
  kAtomicStore,
  kAtomicRmw,
  kMutexLock,
  kMutexUnlock,
  kCvWait,       // untimed
  kCvWaitTimed,  // slice/deadline-bounded
  kCvNotifyOne,
  kCvNotifyAll,
  kSpin,        // one futile spin-loop pause
  kPoint,       // generic write-class schedule point (sync::point())
  kStoreFence,  // sfence: commits pending non-temporal stores
};

const char* op_kind_name(OpKind k);

// A defect (or budget exhaustion) found on one schedule.
struct Report {
  enum class Kind {
    kDataRace,         // plain access unordered by the recorded sync graph
    kUnfencedPublish,  // NT store published without an sfence
    kDeadlock,         // every live thread blocked, no timed waiter
    kLivelock,         // only spin-blocked threads remain
    kHang,             // virtual timeouts cycle without any write progress
  };
  Kind kind = Kind::kDataRace;
  std::string message;  // one-line defect statement
  std::string detail;   // both access sites / per-thread block states
  std::string trace;    // full numbered schedule trace (symbolic ids)
  std::string render() const;
};

// One announced-but-not-yet-granted operation, as shown to the strategy.
struct Candidate {
  int tid = -1;
  OpKind kind = OpKind::kPoint;
  const void* obj = nullptr;  // primary object (atomic/mutex/cv/...), may be null
  std::memory_order mo = std::memory_order_seq_cst;
  // Secondary object: a cv wait atomically releases its mutex, so the op
  // touches two objects and the dependency relation must see both.
  const void* obj2 = nullptr;
};

// Two candidate ops commute iff swapping adjacent executions cannot change
// any state the checker observes. Used by the DFS sleep sets.
bool dependent(const Candidate& a, const Candidate& b);

class Runtime {
 public:
  struct Options {
    // Initial world threads; dispatch starts once this many attached.
    int expected_threads = 2;
    // Hard cap on granted ops per schedule; exceeding it free-runs the rest
    // of the schedule and marks it truncated (not a defect).
    std::uint64_t max_steps = 20000;
    // Consecutive futile kSpin announcements before a thread spin-blocks
    // (released by the next write-class grant).
    int spin_block_threshold = 4;
    // Consecutive quiescent virtual cv timeouts with no intervening
    // write-class grant before the schedule is reported as a hang.
    int hang_timeout_cap = 256;
  };

  // Strategy callback: pick an index into `cands` (sorted by tid, size>=1).
  using Chooser =
      std::function<std::size_t(const std::vector<Candidate>& cands,
                                std::uint64_t step)>;

  Runtime(const Options& opts, Chooser chooser);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // ---- results (read after every world thread returned) ----
  const std::vector<Report>& reports() const { return reports_; }
  bool truncated() const { return truncated_; }
  std::uint64_t steps() const { return step_; }
  // The granted-op trace, one formatted line per step.
  std::string trace_string() const;
  // Decision log: candidate sets at every step with >= 2 candidates, in
  // order, with the chosen index — the DFS explorer's backtrack input.
  struct Decision {
    std::vector<Candidate> cands;
    std::size_t chosen = 0;
    std::uint64_t step = 0;
  };
  const std::vector<Decision>& decisions() const { return decisions_; }

  // ---- hooks (called by verify/sync.h wrappers on attached threads) ----
  void op_atomic(const void* addr, OpKind kind, std::memory_order mo);
  void mutex_lock(const void* m);
  void mutex_unlock(const void* m);
  void cv_wait(const void* cv, const void* m);
  // Returns true when the wake was a (virtual) timeout.
  bool cv_wait_timed(const void* cv, const void* m);
  void cv_notify(const void* cv, bool all);
  void point();       // write-class progress point
  void spin_pause();  // futile spin iteration
  void store_fence();
  void plain_access(const void* addr, bool write, bool nt, const char* label);
  int thread_create();            // announce + reserve child tid
  void await_attached(int tid);   // creator blocks until child registered
  void thread_join(int tid);

  // True once a report/truncation switched the runtime to free-running
  // teardown (modeled waits return spuriously, grants are unconditional).
  bool aborted() const;

 private:
  friend class ThreadScope;
  struct ThreadRec;
  struct Impl;

  void attach(int tid);  // ThreadScope
  void detach();
  bool cv_wait_impl(const void* cv, const void* m, bool timed);
  std::string trace_string_locked(Impl& impl) const;

  std::unique_ptr<Impl> impl_;
  std::vector<Report> reports_;
  std::vector<Decision> decisions_;
  bool truncated_ = false;
  std::uint64_t step_ = 0;
};

// Attaches the calling thread to `rt` as controlled thread `tid` for the
// scope's lifetime. tids are the thread's stable identity in traces and
// must be unique per schedule; initial threads use 0..expected_threads-1,
// sync::thread children get theirs from thread_create().
class ThreadScope {
 public:
  ThreadScope(Runtime& rt, int tid);
  ~ThreadScope();
  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;

 private:
  Runtime& rt_;
};

// The calling thread's runtime, or nullptr when uncontrolled. Wrappers in
// sync.h pass through to the real std primitives on nullptr, so ON builds
// behave normally outside explore() schedules.
Runtime* current();

}  // namespace adasum::verify
