// Schedule exploration strategies over verify::Runtime (DESIGN.md §16.3).
//
// explore() runs `body` once per schedule with a fresh Runtime, steering the
// interleaving through the Runtime's chooser:
//
//  - kDfs: bounded exhaustive depth-first enumeration with sleep sets
//    (DPOR-lite). Commuting choices (dependent() == false for every pair
//    member) are pruned; the search is complete for the modeled semantics
//    when it exhausts the frontier within max_schedules. Used for the 2-3
//    rank transport kernels where the full space is small.
//
//  - kPct: probabilistic concurrency testing. Each seed draws random thread
//    priorities plus pct_depth-1 priority change points; the highest-priority
//    runnable candidate wins every decision. A schedule is a pure function
//    of its seed, so a failing seed replays bit-for-bit (run_seed).
//
// `body` receives the Runtime and must spawn the world's threads, each
// opening a ThreadScope with a unique tid in [0, expected_threads), and join
// them before returning. Threads created mid-schedule go through
// sync::thread, which reserves tids deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "verify/runtime.h"

namespace adasum::verify {

enum class Strategy {
  kDfs,  // bounded exhaustive, sleep-set pruned
  kPct,  // seeded random-priority sampling
};

struct ExploreOptions {
  Strategy strategy = Strategy::kDfs;
  Runtime::Options runtime;
  // Hard cap on schedules for either strategy (DFS completeness requires the
  // frontier to exhaust below this).
  std::uint64_t max_schedules = 4096;
  // kPct: seeds [seed_begin, seed_begin + seed_count) are run in order.
  std::uint64_t seed_begin = 0;
  std::uint64_t seed_count = 64;
  // kPct: number of priority bands (change points = pct_depth - 1).
  int pct_depth = 3;
  // kPct: change points are drawn uniformly from [1, pct_step_horizon].
  std::uint64_t pct_step_horizon = 256;
  bool stop_on_first_report = true;
};

struct ExploreResult {
  std::uint64_t schedules = 0;
  std::uint64_t truncated = 0;  // schedules that hit max_steps
  // kDfs only: the sleep-set frontier was exhausted within max_schedules —
  // every non-commuting interleaving of the modeled ops was covered.
  bool complete = false;
  // Reports from the first failing schedule (empty when all ran clean).
  std::vector<Report> reports;
  // Replay coordinates of the first failing schedule.
  std::uint64_t first_report_seed = 0;        // kPct: the seed
  std::vector<int> first_report_plan;         // kDfs: tid per decision point
  std::string first_report_trace;
};

ExploreResult explore(const ExploreOptions& opts,
                      const std::function<void(Runtime&)>& body);

// Replay one PCT schedule by seed. Deterministic: identical trace, identical
// reports, every time.
ExploreResult run_seed(const ExploreOptions& opts, std::uint64_t seed,
                       const std::function<void(Runtime&)>& body);

// Replay one schedule from a DFS decision plan (tid chosen at each decision
// point, first_report_plan from a prior run).
ExploreResult run_plan(const ExploreOptions& opts,
                       const std::vector<int>& plan,
                       const std::function<void(Runtime&)>& body);

}  // namespace adasum::verify
