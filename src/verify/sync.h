// Schedule-point instrumentation layer (DESIGN.md §16.1).
//
// Product code in the transport/engine hot paths uses sync::atomic,
// sync::mutex, sync::condition_variable, sync::thread and the spin/fence
// helpers below instead of the std primitives.
//
//   ADASUM_VERIFY=OFF (default, the tier-1 configuration): every name here
//   is the std primitive — sync::atomic<T> is literally std::atomic<T> (an
//   alias, not a wrapper), sync::mutex is std::mutex plus Clang
//   thread-safety annotations at zero size/layout cost, the helpers inline
//   to the bare hardware instruction. The OFF-path parity test in
//   transport_test.cpp pins that this layer adds no bytes and no
//   allocations to a send/recv cycle.
//
//   ADASUM_VERIFY=ON: each operation first consults verify::current(). On
//   an uncontrolled thread (no ThreadScope) it passes straight through to
//   the std primitive; on a controlled thread it announces the op to the
//   Runtime, parks until the scheduler grants it, and only then performs
//   the real operation — by construction while holding the schedule baton,
//   so the sequence of real ops IS the schedule. Mutexes and condition
//   variables are modeled by the Runtime in controlled mode (the real
//   std::mutex underneath is never locked), which is what turns lost
//   wakeups into deterministic deadlock reports instead of flaky hangs.
//
// Plain (non-atomic) data accesses that the happens-before auditor should
// check are marked with ADASUM_VERIFY_PLAIN_READ / _PLAIN_WRITE /
// _NT_WRITE; all three compile to ((void)0) when OFF.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "base/thread_annotations.h"

#if ADASUM_VERIFY
#include "verify/runtime.h"
#endif

namespace adasum::sync {

// One spin-loop pause at the instruction level: a pause-class instruction
// where the ISA has one, so a spinning hyperthread yields pipeline
// resources to the publishing core.
inline void cpu_relax_hw() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

// Orders earlier non-temporal stores before later stores (x86 sfence).
inline void store_fence_hw() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_sfence();
#else
  std::atomic_thread_fence(std::memory_order_release);
#endif
}

#if !ADASUM_VERIFY

// ---------------------------------------------------------------------------
// OFF: aliases and annotation-only wrappers. No behavior, no layout change.
// ---------------------------------------------------------------------------

template <class T>
using atomic = std::atomic<T>;

class ADASUM_CAPABILITY("mutex") mutex {
 public:
  mutex() = default;
  mutex(const mutex&) = delete;
  mutex& operator=(const mutex&) = delete;

  void lock() ADASUM_ACQUIRE() { m_.lock(); }
  void unlock() ADASUM_RELEASE() { m_.unlock(); }
  bool try_lock() ADASUM_TRY_ACQUIRE(true) { return m_.try_lock(); }
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};
static_assert(sizeof(mutex) == sizeof(std::mutex),
              "annotation-only wrapper must not change layout");

template <class M>
class ADASUM_SCOPED_CAPABILITY lock_guard {
 public:
  explicit lock_guard(M& m) ADASUM_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~lock_guard() ADASUM_RELEASE() { m_.unlock(); }
  lock_guard(const lock_guard&) = delete;
  lock_guard& operator=(const lock_guard&) = delete;

 private:
  M& m_;
};

template <class M>
class ADASUM_SCOPED_CAPABILITY unique_lock {
 public:
  unique_lock() = default;
  explicit unique_lock(M& m) ADASUM_ACQUIRE(m) : m_(&m), owns_(true) {
    m_->lock();
  }
  unique_lock(unique_lock&& o) noexcept
      : m_(std::exchange(o.m_, nullptr)), owns_(std::exchange(o.owns_, false)) {}
  unique_lock& operator=(unique_lock&& o) noexcept {
    if (this != &o) {
      if (owns_) m_->unlock();
      m_ = std::exchange(o.m_, nullptr);
      owns_ = std::exchange(o.owns_, false);
    }
    return *this;
  }
  ~unique_lock() ADASUM_RELEASE() {
    if (owns_) m_->unlock();
  }

  void lock() ADASUM_ACQUIRE() {
    m_->lock();
    owns_ = true;
  }
  void unlock() ADASUM_RELEASE() {
    m_->unlock();
    owns_ = false;
  }
  bool owns_lock() const { return owns_; }
  M* mutex() const ADASUM_RETURN_CAPABILITY(m_) { return m_; }

 private:
  M* m_ = nullptr;
  bool owns_ = false;
};

class condition_variable {
 public:
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(unique_lock<mutex>& lk) {
    std::unique_lock<std::mutex> ul(lk.mutex()->native(), std::adopt_lock);
    cv_.wait(ul);
    ul.release();
  }
  template <class Pred>
  void wait(unique_lock<mutex>& lk, Pred pred) {
    while (!pred()) wait(lk);
  }
  template <class Rep, class Period>
  std::cv_status wait_for(unique_lock<mutex>& lk,
                          const std::chrono::duration<Rep, Period>& dur) {
    std::unique_lock<std::mutex> ul(lk.mutex()->native(), std::adopt_lock);
    const std::cv_status st = cv_.wait_for(ul, dur);
    ul.release();
    return st;
  }
  template <class Rep, class Period, class Pred>
  bool wait_for(unique_lock<mutex>& lk,
                const std::chrono::duration<Rep, Period>& dur, Pred pred) {
    while (!pred()) {
      if (wait_for(lk, dur) == std::cv_status::timeout) return pred();
    }
    return true;
  }
  template <class Clock, class Duration>
  std::cv_status wait_until(
      unique_lock<mutex>& lk,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    std::unique_lock<std::mutex> ul(lk.mutex()->native(), std::adopt_lock);
    const std::cv_status st = cv_.wait_until(ul, deadline);
    ul.release();
    return st;
  }
  template <class Clock, class Duration, class Pred>
  bool wait_until(unique_lock<mutex>& lk,
                  const std::chrono::time_point<Clock, Duration>& deadline,
                  Pred pred) {
    while (!pred()) {
      if (wait_until(lk, deadline) == std::cv_status::timeout) return pred();
    }
    return true;
  }

 private:
  std::condition_variable cv_;
};
static_assert(sizeof(condition_variable) == sizeof(std::condition_variable),
              "annotation-only wrapper must not change layout");

using thread = std::thread;

inline void point() {}
inline void cpu_relax() { cpu_relax_hw(); }
inline void spin_yield() { std::this_thread::yield(); }
inline void store_fence() { store_fence_hw(); }

// Spin-loop iteration budget: unchanged when OFF; 1 on a controlled thread
// when ON, so every futile iteration is a schedule point.
inline int spin_budget(int n) { return n; }

#define ADASUM_VERIFY_PLAIN_READ(addr, label) ((void)0)
#define ADASUM_VERIFY_PLAIN_WRITE(addr, label) ((void)0)
#define ADASUM_VERIFY_NT_WRITE(addr, label) ((void)0)

#else  // ADASUM_VERIFY

// ---------------------------------------------------------------------------
// ON: announce-then-perform wrappers over the controlled scheduler.
// ---------------------------------------------------------------------------

template <class T>
class atomic {
 public:
  atomic() noexcept = default;
  constexpr atomic(T v) noexcept : a_(v) {}  // NOLINT(google-explicit-constructor)
  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(std::memory_order mo = std::memory_order_seq_cst) const {
    announce(verify::OpKind::kAtomicLoad, mo);
    return a_.load(mo);
  }
  void store(T v, std::memory_order mo = std::memory_order_seq_cst) {
    announce(verify::OpKind::kAtomicStore, mo);
    a_.store(v, mo);
  }
  T exchange(T v, std::memory_order mo = std::memory_order_seq_cst) {
    announce(verify::OpKind::kAtomicRmw, mo);
    return a_.exchange(v, mo);
  }
  T fetch_add(T v, std::memory_order mo = std::memory_order_seq_cst) {
    announce(verify::OpKind::kAtomicRmw, mo);
    return a_.fetch_add(v, mo);
  }
  T fetch_sub(T v, std::memory_order mo = std::memory_order_seq_cst) {
    announce(verify::OpKind::kAtomicRmw, mo);
    return a_.fetch_sub(v, mo);
  }
  T operator=(T v) {
    store(v);
    return v;
  }
  operator T() const { return load(); }

 private:
  void announce(verify::OpKind kind, std::memory_order mo) const {
    if (verify::Runtime* rt = verify::current()) rt->op_atomic(this, kind, mo);
  }
  std::atomic<T> a_;
};

class ADASUM_CAPABILITY("mutex") mutex {
 public:
  mutex() = default;
  mutex(const mutex&) = delete;
  mutex& operator=(const mutex&) = delete;

  void lock() ADASUM_ACQUIRE() {
    if (verify::Runtime* rt = verify::current()) {
      rt->mutex_lock(this);  // modeled: the real mutex stays untouched
    } else {
      m_.lock();
    }
  }
  void unlock() ADASUM_RELEASE() {
    if (verify::Runtime* rt = verify::current()) {
      rt->mutex_unlock(this);
    } else {
      m_.unlock();
    }
  }
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

template <class M>
class ADASUM_SCOPED_CAPABILITY lock_guard {
 public:
  explicit lock_guard(M& m) ADASUM_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~lock_guard() ADASUM_RELEASE() { m_.unlock(); }
  lock_guard(const lock_guard&) = delete;
  lock_guard& operator=(const lock_guard&) = delete;

 private:
  M& m_;
};

template <class M>
class ADASUM_SCOPED_CAPABILITY unique_lock {
 public:
  unique_lock() = default;
  explicit unique_lock(M& m) ADASUM_ACQUIRE(m) : m_(&m), owns_(true) {
    m_->lock();
  }
  unique_lock(unique_lock&& o) noexcept
      : m_(std::exchange(o.m_, nullptr)), owns_(std::exchange(o.owns_, false)) {}
  unique_lock& operator=(unique_lock&& o) noexcept {
    if (this != &o) {
      if (owns_) m_->unlock();
      m_ = std::exchange(o.m_, nullptr);
      owns_ = std::exchange(o.owns_, false);
    }
    return *this;
  }
  ~unique_lock() ADASUM_RELEASE() {
    if (owns_) m_->unlock();
  }

  void lock() ADASUM_ACQUIRE() {
    m_->lock();
    owns_ = true;
  }
  void unlock() ADASUM_RELEASE() {
    m_->unlock();
    owns_ = false;
  }
  bool owns_lock() const { return owns_; }
  M* mutex() const ADASUM_RETURN_CAPABILITY(m_) { return m_; }

 private:
  M* m_ = nullptr;
  bool owns_ = false;
};

class condition_variable {
 public:
  void notify_one() {
    if (verify::Runtime* rt = verify::current()) {
      rt->cv_notify(this, /*all=*/false);
    } else {
      cv_.notify_one();
    }
  }
  void notify_all() {
    if (verify::Runtime* rt = verify::current()) {
      rt->cv_notify(this, /*all=*/true);
    } else {
      cv_.notify_all();
    }
  }

  void wait(unique_lock<mutex>& lk) {
    if (verify::Runtime* rt = verify::current()) {
      rt->cv_wait(this, lk.mutex());
      return;
    }
    std::unique_lock<std::mutex> ul(lk.mutex()->native(), std::adopt_lock);
    cv_.wait(ul);
    ul.release();
  }
  template <class Pred>
  void wait(unique_lock<mutex>& lk, Pred pred) {
    while (!pred()) wait(lk);
  }
  template <class Rep, class Period>
  std::cv_status wait_for(unique_lock<mutex>& lk,
                          const std::chrono::duration<Rep, Period>& dur) {
    if (verify::Runtime* rt = verify::current()) {
      // Durations carry no meaning on the virtual clock: a timed wait times
      // out only when the scheduler quiesces with no runnable thread.
      return rt->cv_wait_timed(this, lk.mutex()) ? std::cv_status::timeout
                                                 : std::cv_status::no_timeout;
    }
    std::unique_lock<std::mutex> ul(lk.mutex()->native(), std::adopt_lock);
    const std::cv_status st = cv_.wait_for(ul, dur);
    ul.release();
    return st;
  }
  template <class Rep, class Period, class Pred>
  bool wait_for(unique_lock<mutex>& lk,
                const std::chrono::duration<Rep, Period>& dur, Pred pred) {
    while (!pred()) {
      if (wait_for(lk, dur) == std::cv_status::timeout) return pred();
    }
    return true;
  }
  template <class Clock, class Duration>
  std::cv_status wait_until(
      unique_lock<mutex>& lk,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    if (verify::Runtime* rt = verify::current()) {
      return rt->cv_wait_timed(this, lk.mutex()) ? std::cv_status::timeout
                                                 : std::cv_status::no_timeout;
    }
    std::unique_lock<std::mutex> ul(lk.mutex()->native(), std::adopt_lock);
    const std::cv_status st = cv_.wait_until(ul, deadline);
    ul.release();
    return st;
  }
  template <class Clock, class Duration, class Pred>
  bool wait_until(unique_lock<mutex>& lk,
                  const std::chrono::time_point<Clock, Duration>& deadline,
                  Pred pred) {
    while (!pred()) {
      if (wait_until(lk, deadline) == std::cv_status::timeout) return pred();
    }
    return true;
  }

 private:
  std::condition_variable cv_;
};

// std::thread with deterministic controlled spawn: the creator announces
// kThreadCreate (reserving the child's tid at a fixed schedule point), the
// child attaches via ThreadScope, and the creator blocks until it has.
class thread {
 public:
  thread() = default;
  template <class F>
  explicit thread(F f) {
    if (verify::Runtime* rt = verify::current()) {
      child_tid_ = rt->thread_create();
      t_ = std::thread([rt, tid = child_tid_, fn = std::move(f)]() mutable {
        verify::ThreadScope scope(*rt, tid);
        fn();
      });
      rt->await_attached(child_tid_);
    } else {
      t_ = std::thread(std::move(f));
    }
  }
  thread(thread&&) noexcept = default;
  thread& operator=(thread&& o) noexcept {
    t_ = std::move(o.t_);
    child_tid_ = std::exchange(o.child_tid_, -1);
    return *this;
  }

  bool joinable() const { return t_.joinable(); }
  void join() {
    if (child_tid_ >= 0) {
      if (verify::Runtime* rt = verify::current()) rt->thread_join(child_tid_);
    }
    t_.join();
  }

 private:
  std::thread t_;
  int child_tid_ = -1;
};

inline void point() {
  if (verify::Runtime* rt = verify::current()) rt->point();
}
inline void cpu_relax() {
  if (verify::Runtime* rt = verify::current()) {
    rt->spin_pause();
    return;
  }
  cpu_relax_hw();
}
inline void spin_yield() {
  if (verify::Runtime* rt = verify::current()) {
    rt->spin_pause();
    return;
  }
  std::this_thread::yield();
}
inline void store_fence() {
  if (verify::Runtime* rt = verify::current()) rt->store_fence();
  store_fence_hw();
}
inline int spin_budget(int n) { return verify::current() != nullptr ? 1 : n; }

namespace detail {
inline void plain(const void* addr, bool write, bool nt, const char* label) {
  if (verify::Runtime* rt = verify::current())
    rt->plain_access(addr, write, nt, label);
}
}  // namespace detail

#define ADASUM_VERIFY_PLAIN_READ(addr, label) \
  (::adasum::sync::detail::plain((addr), false, false, (label)))
#define ADASUM_VERIFY_PLAIN_WRITE(addr, label) \
  (::adasum::sync::detail::plain((addr), true, false, (label)))
#define ADASUM_VERIFY_NT_WRITE(addr, label) \
  (::adasum::sync::detail::plain((addr), true, true, (label)))

#endif  // ADASUM_VERIFY

}  // namespace adasum::sync
