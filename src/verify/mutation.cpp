#include "verify/mutation.h"

#if ADASUM_VERIFY

#include <cstdlib>
#include <cstring>

namespace adasum::verify {

namespace {

constexpr MutationSpec kTable[] = {
    {Mutation::kSeqlockPublishRelaxed, "seqlock_publish_relaxed",
     "epoch odd-publish store release -> relaxed"},
    {Mutation::kSeqlockScanRelaxed, "seqlock_scan_relaxed",
     "epoch scan load acquire -> relaxed"},
    {Mutation::kViewConsumeRelaxed, "view_consume_relaxed",
     "views_consumed retire fetch_add release -> relaxed"},
    {Mutation::kFenceConsumeWindow, "fence_consume_window",
     "fence() tolerates one unconsumed view"},
    {Mutation::kDropSfence, "drop_sfence",
     "sfence between NT payload stores and epoch publish dropped"},
    {Mutation::kChannelPublishRelaxed, "channel_publish_relaxed",
     "lazy channel-grid pointer store release -> relaxed"},
    {Mutation::kMailboxAbortSkipLock, "mailbox_abort_skip_lock",
     "Mailbox::notify_abort skips the predicate-window mutex"},
    {Mutation::kEngineDropDoneNotify, "engine_drop_done_notify",
     "CommEngine worker drops the done_cv_ completion notify"},
};
static_assert(sizeof(kTable) / sizeof(kTable[0]) == kMutationCount);

Mutation env_mutation() {
  const char* env = std::getenv("ADASUM_VERIFY_MUTATE");
  return mutation_from_name(env);
}

// Racing tests would be a poor look for the race checker: the active
// mutation is a process-global atomic, set before schedules launch.
std::atomic<Mutation>& active_slot() {
  static std::atomic<Mutation> active{env_mutation()};
  return active;
}

}  // namespace

const MutationSpec* mutation_table(std::size_t* count) {
  if (count != nullptr) *count = kMutationCount;
  return kTable;
}

Mutation mutation_from_name(const char* name) {
  if (name == nullptr || *name == '\0') return Mutation::kNone;
  for (const MutationSpec& spec : kTable)
    if (std::strcmp(spec.name, name) == 0) return spec.id;
  return Mutation::kNone;
}

Mutation active_mutation() {
  return active_slot().load(std::memory_order_relaxed);
}

void set_active_mutation(Mutation m) {
  active_slot().store(m, std::memory_order_relaxed);
}

bool mutation_enabled(Mutation m) { return active_mutation() == m; }

std::memory_order mutated_order(MutSite site, std::memory_order order) {
  const Mutation m = active_mutation();
  switch (site) {
    case MutSite::kSeqlockPublish:
      if (m == Mutation::kSeqlockPublishRelaxed)
        return std::memory_order_relaxed;
      break;
    case MutSite::kSeqlockScan:
      if (m == Mutation::kSeqlockScanRelaxed) return std::memory_order_relaxed;
      break;
    case MutSite::kViewConsume:
      if (m == Mutation::kViewConsumeRelaxed)
        return std::memory_order_relaxed;
      break;
    case MutSite::kChannelPublish:
      if (m == Mutation::kChannelPublishRelaxed)
        return std::memory_order_relaxed;
      break;
  }
  return order;
}

unsigned fence_slack() {
  return mutation_enabled(Mutation::kFenceConsumeWindow) ? 1u : 0u;
}

}  // namespace adasum::verify

#endif  // ADASUM_VERIFY
