// Seeded weakenings for the model checker's mutation self-tests
// (DESIGN.md §16.4).
//
// A verifier that never fires is indistinguishable from one that cannot
// fire. Each entry in the mutation table below names one deliberate
// weakening of the transport/engine synchronization protocol — exactly the
// bug class the checker exists to catch — and tests/verify_test.cpp proves
// that activating the entry makes the checker report within a bounded
// schedule budget while the unmutated build stays report-free.
//
// Wiring: product code tags its mutation-eligible memory orders with
// ADASUM_MO(site, order) and its mutation-eligible branches with
// ADASUM_VERIFY_MUTATED(entry). Both compile to the unmodified order /
// `false` when ADASUM_VERIFY=OFF, so the release transport carries zero
// residue (the OFF-path parity test in transport_test.cpp pins that).
#pragma once

#include <cstddef>

#if ADASUM_VERIFY

#include <atomic>

namespace adasum::verify {

// One weakening the checker must catch. kNone means "run clean".
enum class Mutation : int {
  kNone = 0,
  // Seqlock epoch publish store release -> relaxed: descriptor/payload
  // writes may be observed after the odd epoch.
  kSeqlockPublishRelaxed,
  // Seqlock epoch scan load acquire -> relaxed: reader's payload reads are
  // no longer ordered after the publish.
  kSeqlockScanRelaxed,
  // views_consumed retire fetch_add release -> relaxed: fence() can order
  // the sender's buffer reuse before the receiver's last payload read.
  kViewConsumeRelaxed,
  // fence() tolerates one unconsumed view (widened consume window): the
  // sender reuses a buffer a receiver is still reducing out of.
  kFenceConsumeWindow,
  // Drop the sfence between non-temporal payload stores and the epoch
  // publish: the publish can become visible before the NT data.
  kDropSfence,
  // Lazy channel-grid pointer store release -> relaxed: a reader can reach
  // a Channel object before its construction is visible.
  kChannelPublishRelaxed,
  // Mailbox::notify_abort skips its mutex acquire/release: a popper that
  // passed its predicate check but has not blocked yet misses the wakeup.
  kMailboxAbortSkipLock,
  // CommEngine worker drops done_cv_ notify after completing an op: every
  // wait()er on that ticket sleeps forever.
  kEngineDropDoneNotify,
};

inline constexpr int kMutationCount = 8;  // excluding kNone

struct MutationSpec {
  Mutation id;
  const char* name;     // ADASUM_VERIFY_MUTATE value / report label
  const char* weakens;  // one-line description of the protocol hole
};

// Build-time table driving the self-test loop in verify_test.cpp.
const MutationSpec* mutation_table(std::size_t* count);

// Name lookup (nullptr-safe); returns kNone for unknown names.
Mutation mutation_from_name(const char* name);

// Active mutation: ADASUM_VERIFY_MUTATE=<name> in the environment, read
// once, unless a ScopedMutation overrides it programmatically.
Mutation active_mutation();
void set_active_mutation(Mutation m);

// RAII override for the self-test loop.
class ScopedMutation {
 public:
  explicit ScopedMutation(Mutation m) : prev_(active_mutation()) {
    set_active_mutation(m);
  }
  ~ScopedMutation() { set_active_mutation(prev_); }
  ScopedMutation(const ScopedMutation&) = delete;
  ScopedMutation& operator=(const ScopedMutation&) = delete;

 private:
  Mutation prev_;
};

// Memory-order sites eligible for weakening. A site may appear at several
// code locations (e.g. every epoch scan load shares kSeqlockScan).
enum class MutSite : int {
  kSeqlockPublish,  // epoch odd-publish store (release)
  kSeqlockScan,     // epoch scan load (acquire)
  kViewConsume,     // views_consumed fetch_add (release)
  kChannelPublish,  // channel_ptrs_ grid store (release)
};

std::memory_order mutated_order(MutSite site, std::memory_order order);

// 0 normally; 1 under kFenceConsumeWindow.
unsigned fence_slack();

bool mutation_enabled(Mutation m);

}  // namespace adasum::verify

#define ADASUM_MO(site, order) \
  (::adasum::verify::mutated_order(::adasum::verify::MutSite::site, (order)))
#define ADASUM_VERIFY_FENCE_SLACK() (::adasum::verify::fence_slack())
#define ADASUM_VERIFY_MUTATED(entry) \
  (::adasum::verify::mutation_enabled(::adasum::verify::Mutation::entry))

#else  // !ADASUM_VERIFY

// OFF build: the annotations vanish — ADASUM_MO yields the order unchanged
// and mutation branches fold to their unmutated arm at compile time.
#define ADASUM_MO(site, order) (order)
#define ADASUM_VERIFY_FENCE_SLACK() 0u
#define ADASUM_VERIFY_MUTATED(entry) false

#endif  // ADASUM_VERIFY
