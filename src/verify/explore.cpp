#include "verify/explore.h"

#include <algorithm>
#include <limits>
#include <map>
#include <random>
#include <set>

namespace adasum::verify {

namespace {

const Candidate* find_tid(const std::vector<Candidate>& cands, int tid) {
  for (const Candidate& c : cands)
    if (c.tid == tid) return &c;
  return nullptr;
}

std::size_t index_of_tid(const std::vector<Candidate>& cands, int tid) {
  for (std::size_t i = 0; i < cands.size(); ++i)
    if (cands[i].tid == tid) return i;
  return 0;  // divergence fallback; candidates are keyed by stable tids
}

// ---- DFS with sleep sets -------------------------------------------------
//
// One node per decision point (>= 2 candidates). Candidate OBJECTS are
// refreshed every run (heap addresses change between schedules; tids are the
// stable identity), so nodes store only tid sets and the per-run replay
// keeps this run's candidate vectors for backtracking.
class DfsState {
 public:
  void begin_run() {
    depth_ = 0;
    cur_sleep_.clear();
    run_cands_.clear();
  }

  std::size_t choose(const std::vector<Candidate>& cands) {
    if (cands.size() < 2) {
      // Forced op: no node, but sleep sets still propagate through it —
      // an op dependent on a sleeper's pending op wakes the sleeper.
      if (!cands.empty()) propagate(cands, cands[0]);
      return 0;
    }
    int chosen_tid;
    if (depth_ < stack_.size()) {
      // Replaying the planned prefix. The branch's sleep set is the node's
      // entry sleep plus every sibling explored before this branch.
      Node& node = stack_[depth_];
      chosen_tid = node.chosen;
      cur_sleep_ = node.entry_sleep;
      for (int t : node.explored)
        if (t != node.chosen) cur_sleep_.insert(t);
    } else {
      // Frontier: create a node whose entry sleep is the propagated set.
      Node node;
      node.entry_sleep = cur_sleep_;
      chosen_tid = -1;
      for (const Candidate& c : cands) {
        if (cur_sleep_.count(c.tid) == 0) {
          chosen_tid = c.tid;
          break;
        }
      }
      // All candidates asleep: a sleep-set-blocked branch. Executing the
      // lowest anyway is redundant work, never missed coverage.
      if (chosen_tid < 0) chosen_tid = cands.front().tid;
      node.chosen = chosen_tid;
      node.explored.insert(chosen_tid);
      stack_.push_back(std::move(node));
    }
    if (run_cands_.size() <= depth_) run_cands_.resize(depth_ + 1);
    run_cands_[depth_] = cands;
    const std::size_t idx = index_of_tid(cands, chosen_tid);
    propagate(cands, cands[idx]);
    ++depth_;
    return idx;
  }

  // Advance to the next unexplored branch; false when the space is done.
  bool advance() {
    // A report/truncation can end a run before the full planned prefix
    // replayed; drop nodes this run never reached.
    if (run_cands_.size() < stack_.size()) stack_.resize(run_cands_.size());
    while (!stack_.empty()) {
      Node& node = stack_.back();
      const std::vector<Candidate>& cands = run_cands_[stack_.size() - 1];
      int next_tid = -1;
      for (const Candidate& c : cands) {
        if (node.explored.count(c.tid) == 0 &&
            node.entry_sleep.count(c.tid) == 0) {
          next_tid = c.tid;
          break;
        }
      }
      if (next_tid >= 0) {
        node.chosen = next_tid;
        node.explored.insert(next_tid);
        return true;
      }
      stack_.pop_back();
      run_cands_.pop_back();
    }
    return false;
  }

 private:
  struct Node {
    std::set<int> entry_sleep;  // tids asleep on entering this node
    std::set<int> explored;     // branches taken so far (incl. current)
    int chosen = -1;
  };

  void propagate(const std::vector<Candidate>& cands, const Candidate& ran) {
    std::set<int> next;
    for (int t : cur_sleep_) {
      if (t == ran.tid) continue;
      const Candidate* pending = find_tid(cands, t);
      // A sleeper whose pending op is disabled (absent) stays out of the
      // set: when re-enabled its op may differ. Conservative, never prunes.
      if (pending != nullptr && !dependent(*pending, ran)) next.insert(t);
    }
    cur_sleep_ = next;
  }

  std::vector<Node> stack_;
  std::size_t depth_ = 0;
  std::set<int> cur_sleep_;
  std::vector<std::vector<Candidate>> run_cands_;
};

// ---- PCT -----------------------------------------------------------------
class PctChooser {
 public:
  PctChooser(std::uint64_t seed, int depth, std::uint64_t horizon)
      : rng_(seed) {
    const std::uint64_t span = horizon == 0 ? 1 : horizon;
    for (int i = 1; i < depth; ++i)
      change_points_.push_back(rng_() % span + 1);
    std::sort(change_points_.begin(), change_points_.end());
  }

  std::size_t operator()(const std::vector<Candidate>& cands,
                         std::uint64_t step) {
    while (next_cp_ < change_points_.size() &&
           step >= change_points_[next_cp_]) {
      // Priority change point: the thread running at this step falls to the
      // bottom of the priority order.
      if (last_chosen_ >= 0) prio_[last_chosen_] = demote_next_--;
      ++next_cp_;
    }
    std::size_t best = 0;
    std::int64_t best_prio = std::numeric_limits<std::int64_t>::min();
    for (std::size_t i = 0; i < cands.size(); ++i) {
      const std::int64_t p = priority(cands[i].tid);
      if (p > best_prio) {
        best_prio = p;
        best = i;  // cands sorted by tid: ties go to the lowest tid
      }
    }
    last_chosen_ = cands[best].tid;
    return best;
  }

 private:
  std::int64_t priority(int tid) {
    auto it = prio_.find(tid);
    if (it != prio_.end()) return it->second;
    // Lazily drawn base priorities sit far above the demotion band.
    const std::int64_t p =
        static_cast<std::int64_t>(rng_() % (1u << 20)) + (1 << 20);
    prio_.emplace(tid, p);
    return p;
  }

  std::mt19937_64 rng_;
  std::vector<std::uint64_t> change_points_;
  std::size_t next_cp_ = 0;
  std::map<int, std::int64_t> prio_;
  std::int64_t demote_next_ = 0;  // 0, -1, -2, ... below every base priority
  int last_chosen_ = -1;
};

void record_schedule(ExploreResult& res, const Runtime& rt) {
  ++res.schedules;
  if (rt.truncated()) ++res.truncated;
}

// First failing schedule wins; later ones only bump counters.
bool record_failure(ExploreResult& res, const Runtime& rt) {
  if (rt.reports().empty()) return false;
  if (res.reports.empty()) {
    res.reports = rt.reports();
    res.first_report_trace = rt.trace_string();
    for (const Runtime::Decision& d : rt.decisions())
      res.first_report_plan.push_back(d.cands[d.chosen].tid);
  }
  return true;
}

}  // namespace

ExploreResult explore(const ExploreOptions& opts,
                      const std::function<void(Runtime&)>& body) {
  ExploreResult res;
  if (opts.strategy == Strategy::kDfs) {
    DfsState dfs;
    bool more = true;
    while (more && res.schedules < opts.max_schedules) {
      dfs.begin_run();
      Runtime rt(opts.runtime,
                 [&dfs](const std::vector<Candidate>& cands, std::uint64_t) {
                   return dfs.choose(cands);
                 });
      body(rt);
      record_schedule(res, rt);
      if (record_failure(res, rt) && opts.stop_on_first_report) return res;
      more = dfs.advance();
    }
    res.complete = !more;
    return res;
  }

  for (std::uint64_t s = 0; s < opts.seed_count; ++s) {
    if (res.schedules >= opts.max_schedules) break;
    const std::uint64_t seed = opts.seed_begin + s;
    PctChooser pct(seed, opts.pct_depth, opts.pct_step_horizon);
    Runtime rt(opts.runtime,
               [&pct](const std::vector<Candidate>& cands,
                      std::uint64_t step) { return pct(cands, step); });
    body(rt);
    record_schedule(res, rt);
    if (!rt.reports().empty()) {
      if (res.reports.empty()) res.first_report_seed = seed;
      record_failure(res, rt);
      if (opts.stop_on_first_report) return res;
    }
  }
  return res;  // sampling is never "complete"
}

ExploreResult run_seed(const ExploreOptions& opts, std::uint64_t seed,
                       const std::function<void(Runtime&)>& body) {
  ExploreOptions one = opts;
  one.strategy = Strategy::kPct;
  one.seed_begin = seed;
  one.seed_count = 1;
  one.stop_on_first_report = false;
  ExploreResult res = explore(one, body);
  res.first_report_seed = seed;
  return res;
}

ExploreResult run_plan(const ExploreOptions& opts,
                       const std::vector<int>& plan,
                       const std::function<void(Runtime&)>& body) {
  ExploreResult res;
  std::size_t k = 0;
  Runtime rt(opts.runtime,
             [&plan, &k](const std::vector<Candidate>& cands, std::uint64_t) {
               if (cands.size() < 2) return std::size_t{0};
               const int tid = k < plan.size() ? plan[k] : cands.front().tid;
               ++k;
               return index_of_tid(cands, tid);
             });
  body(rt);
  record_schedule(res, rt);
  record_failure(res, rt);
  return res;
}

}  // namespace adasum::verify
