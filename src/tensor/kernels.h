// Numeric kernels used by the Adasum operator and the collectives.
//
// Two design rules from the paper are observed throughout:
//  * §4.4.1 — dot products and squared norms ACCUMULATE IN DOUBLE regardless
//    of the payload dtype (fp16/fp32/fp64). The improved floating-point
//    stability of the reduction scalars is what lets fp16 payloads converge.
//  * §4.4.2 — hot loops are explicitly vectorized. Every kernel here routes
//    through the runtime-dispatched SIMD engine (tensor/simd/simd.h): AVX2+
//    FMA+F16C implementations when the build and the CPU support them, the
//    seed scalar loops otherwise, selectable with ADASUM_SIMD=scalar|avx2|
//    auto. Typed and dtype-erased entry points hit the SAME function-pointer
//    table, so the in-place collectives, the copy-based reference oracle, the
//    resilient path and the optimizers compute bit-identical results by
//    construction (DESIGN.md §10).
//
// Typed overloads operate on spans; dtype-erased overloads operate on raw
// byte buffers + DType, which is what the collectives use since wire
// payloads are untyped.
#pragma once

#include <cstddef>
#include <span>
#include <type_traits>

#include "base/half.h"
#include "tensor/dtype.h"

namespace adasum::kernels {

// ---- typed kernels ---------------------------------------------------------

// sum_i a[i]*b[i], accumulated in double.
template <typename T>
double dot(std::span<const T> a, std::span<const T> b);

// sum_i a[i]^2, accumulated in double.
template <typename T>
double norm_squared(std::span<const T> a);

// Computes, in one pass: {dot(a,b), norm_squared(a), norm_squared(b)}.
// This is the v = [a·b, a·a, b·b] triple from Algorithm 1 line 15.
struct DotTriple {
  double ab = 0.0;
  double aa = 0.0;
  double bb = 0.0;
};
template <typename T>
DotTriple dot_triple(std::span<const T> a, std::span<const T> b);

// y[i] += alpha * x[i]
template <typename T>
void axpy(double alpha, std::span<const T> x, std::span<T> y);

// x[i] *= alpha
template <typename T>
void scale(double alpha, std::span<T> x);

// y[i] += x[i]
template <typename T>
void add(std::span<const T> x, std::span<T> y);

// out[i] = a[i]*ca + b[i]*cb   (the Adasum local combine, Algorithm 1 line 18)
//
// Aliasing contract: `out` may alias `a` or `b` EXACTLY (same base pointer,
// same extent) — the in-place AdasumRVH combine and adasum_pair_inplace call
// it with out == a. Partially overlapping spans are NOT supported: vector
// implementations load and store in multi-element chunks and a store to a
// chunk that overlaps a later load would be observed. Regression tests for
// out==a, out==b and disjoint buffers on every dispatch level live in
// tests/simd_test.cpp.
template <typename T>
void scaled_sum(std::span<const T> a, double ca, std::span<const T> b,
                double cb, std::span<T> out);

// True if any element is NaN or +-inf (fp16 dynamic-scaling overflow check).
template <typename T>
bool has_nonfinite(std::span<const T> a);

// Bulk fp16 <-> fp32 conversion (paper §4.4.1 mixed-precision payloads).
// Dispatched: F16C vcvtph2ps/vcvtps2ph when available, a batched software
// loop (bit-identical to per-element Half access) otherwise. src and dst
// must not overlap. Round-to-nearest-even on narrowing, overflow to ±inf,
// subnormals and infinities preserved; NaNs stay NaN (the hardware path may
// quiet signaling NaN payloads where the software path drops them — both
// remain NaN, which is all the overflow check needs).
void half_to_float(std::span<const Half> src, std::span<float> dst);
void float_to_half(std::span<const float> src, std::span<Half> dst);

// Mutable-span convenience overloads: template deduction does not convert
// span<T> to span<const T>, so calls like dot(t.span<float>(), ...) need
// these forwarding shims.
template <typename T>
  requires(!std::is_const_v<T>)
double dot(std::span<T> a, std::span<T> b) {
  return dot(std::span<const T>(a), std::span<const T>(b));
}
template <typename T>
  requires(!std::is_const_v<T>)
double norm_squared(std::span<T> a) {
  return norm_squared(std::span<const T>(a));
}
template <typename T>
  requires(!std::is_const_v<T>)
DotTriple dot_triple(std::span<T> a, std::span<T> b) {
  return dot_triple(std::span<const T>(a), std::span<const T>(b));
}
template <typename T>
  requires(!std::is_const_v<T>)
void axpy(double alpha, std::span<T> x, std::span<T> y) {
  axpy(alpha, std::span<const T>(x), y);
}
template <typename T>
  requires(!std::is_const_v<T>)
void add(std::span<T> x, std::span<T> y) {
  add(std::span<const T>(x), y);
}
template <typename T>
  requires(!std::is_const_v<T>)
void scaled_sum(std::span<T> a, double ca, std::span<T> b, double cb,
                std::span<T> out) {
  scaled_sum(std::span<const T>(a), ca, std::span<const T>(b), cb, out);
}
template <typename T>
  requires(!std::is_const_v<T>)
bool has_nonfinite(std::span<T> a) {
  return has_nonfinite(std::span<const T>(a));
}

// ---- dtype-erased kernels (collectives operate on byte payloads) ----------

DotTriple dot_triple_bytes(const std::byte* a, const std::byte* b,
                           std::size_t count, DType dtype);
// Same aliasing contract as the typed scaled_sum: out may equal a or b.
void scaled_sum_bytes(const std::byte* a, double ca, const std::byte* b,
                      double cb, std::byte* out, std::size_t count,
                      DType dtype);
void add_bytes(const std::byte* x, std::byte* y, std::size_t count,
               DType dtype);
void scale_bytes(double alpha, std::byte* x, std::size_t count, DType dtype);
double norm_squared_bytes(const std::byte* a, std::size_t count, DType dtype);
bool has_nonfinite_bytes(const std::byte* a, std::size_t count, DType dtype);
// Straight payload copy (fusion pack/unpack); src and dst must not overlap.
void copy_bytes(const std::byte* src, std::byte* dst, std::size_t count,
                DType dtype);
// Raw byte copy tuned for one-shot landings the destination will not be
// re-read from soon (a zero-copy receive depositing a peer's span into the
// caller's buffer): uses non-temporal stores on large payloads where
// available, memcpy otherwise. Regions must not overlap.
void stream_copy_bytes(const std::byte* src, std::byte* dst,
                       std::size_t bytes);

}  // namespace adasum::kernels
