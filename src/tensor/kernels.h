// Numeric kernels used by the Adasum operator and the collectives.
//
// Two design rules from the paper are observed throughout:
//  * §4.4.1 — dot products and squared norms ACCUMULATE IN DOUBLE regardless
//    of the payload dtype (fp16/fp32/fp64). The improved floating-point
//    stability of the reduction scalars is what lets fp16 payloads converge.
//  * §4.4.2 — hot loops are written with independent partial accumulators so
//    the compiler vectorizes them (the CPU analogue of the hand-vectorized
//    Horovod kernels).
//
// Typed overloads operate on spans; dtype-erased overloads operate on raw
// byte buffers + DType, which is what the collectives use since wire
// payloads are untyped.
#pragma once

#include <cstddef>
#include <span>
#include <type_traits>

#include "base/half.h"
#include "tensor/dtype.h"

namespace adasum::kernels {

// ---- typed kernels ---------------------------------------------------------

// sum_i a[i]*b[i], accumulated in double.
template <typename T>
double dot(std::span<const T> a, std::span<const T> b);

// sum_i a[i]^2, accumulated in double.
template <typename T>
double norm_squared(std::span<const T> a);

// Computes, in one pass: {dot(a,b), norm_squared(a), norm_squared(b)}.
// This is the v = [a·b, a·a, b·b] triple from Algorithm 1 line 15.
struct DotTriple {
  double ab = 0.0;
  double aa = 0.0;
  double bb = 0.0;
};
template <typename T>
DotTriple dot_triple(std::span<const T> a, std::span<const T> b);

// y[i] += alpha * x[i]
template <typename T>
void axpy(double alpha, std::span<const T> x, std::span<T> y);

// x[i] *= alpha
template <typename T>
void scale(double alpha, std::span<T> x);

// y[i] += x[i]
template <typename T>
void add(std::span<const T> x, std::span<T> y);

// out[i] = a[i]*ca + b[i]*cb   (the Adasum local combine, Algorithm 1 line 18)
template <typename T>
void scaled_sum(std::span<const T> a, double ca, std::span<const T> b,
                double cb, std::span<T> out);

// True if any element is NaN or +-inf (fp16 dynamic-scaling overflow check).
template <typename T>
bool has_nonfinite(std::span<const T> a);

// Mutable-span convenience overloads: template deduction does not convert
// span<T> to span<const T>, so calls like dot(t.span<float>(), ...) need
// these forwarding shims.
template <typename T>
  requires(!std::is_const_v<T>)
double dot(std::span<T> a, std::span<T> b) {
  return dot(std::span<const T>(a), std::span<const T>(b));
}
template <typename T>
  requires(!std::is_const_v<T>)
double norm_squared(std::span<T> a) {
  return norm_squared(std::span<const T>(a));
}
template <typename T>
  requires(!std::is_const_v<T>)
DotTriple dot_triple(std::span<T> a, std::span<T> b) {
  return dot_triple(std::span<const T>(a), std::span<const T>(b));
}
template <typename T>
  requires(!std::is_const_v<T>)
void axpy(double alpha, std::span<T> x, std::span<T> y) {
  axpy(alpha, std::span<const T>(x), y);
}
template <typename T>
  requires(!std::is_const_v<T>)
void add(std::span<T> x, std::span<T> y) {
  add(std::span<const T>(x), y);
}
template <typename T>
  requires(!std::is_const_v<T>)
void scaled_sum(std::span<T> a, double ca, std::span<T> b, double cb,
                std::span<T> out) {
  scaled_sum(std::span<const T>(a), ca, std::span<const T>(b), cb, out);
}
template <typename T>
  requires(!std::is_const_v<T>)
bool has_nonfinite(std::span<T> a) {
  return has_nonfinite(std::span<const T>(a));
}

// ---- dtype-erased kernels (collectives operate on byte payloads) ----------

DotTriple dot_triple_bytes(const std::byte* a, const std::byte* b,
                           std::size_t count, DType dtype);
void scaled_sum_bytes(const std::byte* a, double ca, const std::byte* b,
                      double cb, std::byte* out, std::size_t count,
                      DType dtype);
void add_bytes(const std::byte* x, std::byte* y, std::size_t count,
               DType dtype);
void scale_bytes(double alpha, std::byte* x, std::size_t count, DType dtype);
double norm_squared_bytes(const std::byte* a, std::size_t count, DType dtype);

}  // namespace adasum::kernels
