#include "tensor/quantize.h"

#include <cmath>

#include "base/check.h"

namespace adasum {

float quantize_int8_into(std::span<const float> values,
                         std::span<std::int8_t> out) {
  ADASUM_CHECK_EQ(out.size(), values.size());
  float max_abs = 0.0f;
  for (float v : values) max_abs = std::max(max_abs, std::abs(v));
  if (max_abs == 0.0f) {
    for (auto& q : out) q = 0;
    return 0.0f;
  }
  const float scale = max_abs / 127.0f;
  const float inv = 1.0f / scale;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const float scaled = values[i] * inv;
    const float rounded = std::nearbyint(scaled);
    out[i] = static_cast<std::int8_t>(
        std::max(-127.0f, std::min(127.0f, rounded)));
  }
  return scale;
}

Int8Quantized quantize_int8(std::span<const float> values) {
  Int8Quantized q;
  q.data.resize(values.size());
  q.scale = quantize_int8_into(values, q.data);
  return q;
}

void dequantize_int8(std::span<const std::int8_t> data, float scale,
                     std::span<float> out) {
  ADASUM_CHECK_EQ(out.size(), data.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<float>(data[i]) * scale;
}

void dequantize_int8(const Int8Quantized& q, std::span<float> out) {
  dequantize_int8(std::span<const std::int8_t>(q.data), q.scale, out);
}

ErrorFeedback::ErrorFeedback(std::vector<std::size_t> sizes) {
  residuals_.reserve(sizes.size());
  for (std::size_t n : sizes) residuals_.emplace_back(n, 0.0f);
}

void ErrorFeedback::compensate(std::size_t index, std::span<float> values) {
  ADASUM_CHECK_LT(index, residuals_.size());
  const auto& r = residuals_[index];
  ADASUM_CHECK_EQ(values.size(), r.size());
  for (std::size_t i = 0; i < values.size(); ++i) values[i] += r[i];
}

void ErrorFeedback::record(std::size_t index, std::span<const float> values,
                           std::span<const float> transmitted) {
  ADASUM_CHECK_LT(index, residuals_.size());
  auto& r = residuals_[index];
  ADASUM_CHECK_EQ(values.size(), r.size());
  ADASUM_CHECK_EQ(transmitted.size(), r.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    r[i] = values[i] - transmitted[i];
}

double ErrorFeedback::residual_norm_squared() const {
  double acc = 0.0;
  for (const auto& r : residuals_)
    for (float v : r) acc += static_cast<double>(v) * v;
  return acc;
}

}  // namespace adasum
