#include "tensor/kernels.h"

#include <cmath>

#include "base/check.h"

namespace adasum::kernels {
namespace {

// Loads an element as double. For Half this is the fp16->fp32->fp64 widening;
// for float/double it is a plain conversion the compiler folds into the loop.
template <typename T>
inline double load(const T& v) {
  return static_cast<double>(v);
}
inline double load(const Half& v) { return static_cast<double>(static_cast<float>(v)); }

template <typename T>
inline T store(double v) {
  return static_cast<T>(v);
}
template <>
inline Half store<Half>(double v) {
  return Half(static_cast<float>(v));
}

}  // namespace

template <typename T>
double dot(std::span<const T> a, std::span<const T> b) {
  ADASUM_CHECK_EQ(a.size(), b.size());
  const std::size_t n = a.size();
  // Four independent accumulators: breaks the loop-carried dependence so the
  // compiler can vectorize / software-pipeline the reduction.
  double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += load(a[i + 0]) * load(b[i + 0]);
    s1 += load(a[i + 1]) * load(b[i + 1]);
    s2 += load(a[i + 2]) * load(b[i + 2]);
    s3 += load(a[i + 3]) * load(b[i + 3]);
  }
  for (; i < n; ++i) s0 += load(a[i]) * load(b[i]);
  return (s0 + s1) + (s2 + s3);
}

template <typename T>
double norm_squared(std::span<const T> a) {
  return dot(a, a);
}

template <typename T>
DotTriple dot_triple(std::span<const T> a, std::span<const T> b) {
  ADASUM_CHECK_EQ(a.size(), b.size());
  const std::size_t n = a.size();
  DotTriple t;
  double ab0 = 0, ab1 = 0, aa0 = 0, aa1 = 0, bb0 = 0, bb1 = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const double x0 = load(a[i]), y0 = load(b[i]);
    const double x1 = load(a[i + 1]), y1 = load(b[i + 1]);
    ab0 += x0 * y0;
    aa0 += x0 * x0;
    bb0 += y0 * y0;
    ab1 += x1 * y1;
    aa1 += x1 * x1;
    bb1 += y1 * y1;
  }
  if (i < n) {
    const double x = load(a[i]), y = load(b[i]);
    ab0 += x * y;
    aa0 += x * x;
    bb0 += y * y;
  }
  t.ab = ab0 + ab1;
  t.aa = aa0 + aa1;
  t.bb = bb0 + bb1;
  return t;
}

template <typename T>
void axpy(double alpha, std::span<const T> x, std::span<T> y) {
  ADASUM_CHECK_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    y[i] = store<T>(load(y[i]) + alpha * load(x[i]));
}

template <typename T>
void scale(double alpha, std::span<T> x) {
  for (auto& v : x) v = store<T>(alpha * load(v));
}

template <typename T>
void add(std::span<const T> x, std::span<T> y) {
  ADASUM_CHECK_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    y[i] = store<T>(load(y[i]) + load(x[i]));
}

template <typename T>
void scaled_sum(std::span<const T> a, double ca, std::span<const T> b,
                double cb, std::span<T> out) {
  ADASUM_CHECK_EQ(a.size(), b.size());
  ADASUM_CHECK_EQ(a.size(), out.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out[i] = store<T>(ca * load(a[i]) + cb * load(b[i]));
}

template <typename T>
bool has_nonfinite(std::span<const T> a) {
  for (const auto& v : a)
    if (!std::isfinite(load(v))) return true;
  return false;
}

// Explicit instantiations for the three supported payload dtypes.
#define ADASUM_INSTANTIATE(T)                                                  \
  template double dot<T>(std::span<const T>, std::span<const T>);              \
  template double norm_squared<T>(std::span<const T>);                         \
  template DotTriple dot_triple<T>(std::span<const T>, std::span<const T>);    \
  template void axpy<T>(double, std::span<const T>, std::span<T>);             \
  template void scale<T>(double, std::span<T>);                                \
  template void add<T>(std::span<const T>, std::span<T>);                      \
  template void scaled_sum<T>(std::span<const T>, double, std::span<const T>,  \
                              double, std::span<T>);                           \
  template bool has_nonfinite<T>(std::span<const T>);

ADASUM_INSTANTIATE(Half)
ADASUM_INSTANTIATE(float)
ADASUM_INSTANTIATE(double)
#undef ADASUM_INSTANTIATE

namespace {

template <typename T>
std::span<const T> typed(const std::byte* p, std::size_t n) {
  return {reinterpret_cast<const T*>(p), n};
}
template <typename T>
std::span<T> typed(std::byte* p, std::size_t n) {
  return {reinterpret_cast<T*>(p), n};
}

}  // namespace

DotTriple dot_triple_bytes(const std::byte* a, const std::byte* b,
                           std::size_t count, DType dtype) {
  return dispatch_dtype(dtype, [&]<typename T>() {
    return dot_triple(typed<T>(a, count), typed<T>(b, count));
  });
}

void scaled_sum_bytes(const std::byte* a, double ca, const std::byte* b,
                      double cb, std::byte* out, std::size_t count,
                      DType dtype) {
  dispatch_dtype(dtype, [&]<typename T>() {
    scaled_sum(typed<T>(a, count), ca, typed<T>(b, count), cb,
               typed<T>(out, count));
  });
}

void add_bytes(const std::byte* x, std::byte* y, std::size_t count,
               DType dtype) {
  dispatch_dtype(dtype, [&]<typename T>() {
    add(typed<T>(x, count), typed<T>(y, count));
  });
}

void scale_bytes(double alpha, std::byte* x, std::size_t count, DType dtype) {
  dispatch_dtype(dtype,
                 [&]<typename T>() { scale(alpha, typed<T>(x, count)); });
}

double norm_squared_bytes(const std::byte* a, std::size_t count, DType dtype) {
  return dispatch_dtype(dtype, [&]<typename T>() {
    return norm_squared(typed<T>(a, count));
  });
}

}  // namespace adasum::kernels
