// Thin wrappers over the runtime-dispatched SIMD kernel table. All size and
// dtype checking happens here, once, so the per-ISA implementations in
// tensor/simd/ stay branch-free; typed and byte entry points index the same
// table, which is what keeps every caller — in-place collectives, reference
// oracle, optimizers — numerically identical per dispatch level.
#include "tensor/kernels.h"

#include <cstring>

#include "base/check.h"
#include "tensor/simd/simd.h"

namespace adasum::kernels {
namespace {

// The simd tables index kernels by the integer value of DType.
static_assert(static_cast<int>(DType::kFloat16) == simd::kF16);
static_assert(static_cast<int>(DType::kFloat32) == simd::kF32);
static_assert(static_cast<int>(DType::kFloat64) == simd::kF64);

template <typename T>
inline constexpr int kIdx = static_cast<int>(dtype_of<T>);

inline int idx(DType dtype) {
  const int i = static_cast<int>(dtype);
  ADASUM_CHECK(i >= 0 && i < simd::kNumDtypes);
  return i;
}

template <typename T>
const std::byte* bytes(const T* p) {
  return reinterpret_cast<const std::byte*>(p);
}
template <typename T>
std::byte* bytes(T* p) {
  return reinterpret_cast<std::byte*>(p);
}

}  // namespace

template <typename T>
double dot(std::span<const T> a, std::span<const T> b) {
  ADASUM_CHECK_EQ(a.size(), b.size());
  return simd::active_table().dot[kIdx<T>](bytes(a.data()), bytes(b.data()),
                                           a.size());
}

template <typename T>
double norm_squared(std::span<const T> a) {
  return simd::active_table().norm_squared[kIdx<T>](bytes(a.data()), a.size());
}

template <typename T>
DotTriple dot_triple(std::span<const T> a, std::span<const T> b) {
  ADASUM_CHECK_EQ(a.size(), b.size());
  double v[3];
  simd::active_table().dot_triple[kIdx<T>](bytes(a.data()), bytes(b.data()),
                                           a.size(), v);
  return DotTriple{v[0], v[1], v[2]};
}

template <typename T>
void axpy(double alpha, std::span<const T> x, std::span<T> y) {
  ADASUM_CHECK_EQ(x.size(), y.size());
  simd::active_table().axpy[kIdx<T>](alpha, bytes(x.data()), bytes(y.data()),
                                     x.size());
}

template <typename T>
void scale(double alpha, std::span<T> x) {
  simd::active_table().scale[kIdx<T>](alpha, bytes(x.data()), x.size());
}

template <typename T>
void add(std::span<const T> x, std::span<T> y) {
  ADASUM_CHECK_EQ(x.size(), y.size());
  simd::active_table().add[kIdx<T>](bytes(x.data()), bytes(y.data()),
                                    x.size());
}

template <typename T>
void scaled_sum(std::span<const T> a, double ca, std::span<const T> b,
                double cb, std::span<T> out) {
  ADASUM_CHECK_EQ(a.size(), b.size());
  ADASUM_CHECK_EQ(a.size(), out.size());
  simd::active_table().scaled_sum[kIdx<T>](bytes(a.data()), ca,
                                           bytes(b.data()), cb,
                                           bytes(out.data()), a.size());
}

template <typename T>
bool has_nonfinite(std::span<const T> a) {
  return simd::active_table().has_nonfinite[kIdx<T>](bytes(a.data()),
                                                     a.size());
}

void half_to_float(std::span<const Half> src, std::span<float> dst) {
  ADASUM_CHECK_EQ(src.size(), dst.size());
  simd::active_table().half_to_float(
      reinterpret_cast<const std::uint16_t*>(src.data()), dst.data(),
      src.size());
}

void float_to_half(std::span<const float> src, std::span<Half> dst) {
  ADASUM_CHECK_EQ(src.size(), dst.size());
  simd::active_table().float_to_half(
      src.data(), reinterpret_cast<std::uint16_t*>(dst.data()), src.size());
}

// Explicit instantiations for the three supported payload dtypes.
#define ADASUM_INSTANTIATE(T)                                                  \
  template double dot<T>(std::span<const T>, std::span<const T>);              \
  template double norm_squared<T>(std::span<const T>);                         \
  template DotTriple dot_triple<T>(std::span<const T>, std::span<const T>);    \
  template void axpy<T>(double, std::span<const T>, std::span<T>);             \
  template void scale<T>(double, std::span<T>);                                \
  template void add<T>(std::span<const T>, std::span<T>);                      \
  template void scaled_sum<T>(std::span<const T>, double, std::span<const T>,  \
                              double, std::span<T>);                           \
  template bool has_nonfinite<T>(std::span<const T>);

ADASUM_INSTANTIATE(Half)
ADASUM_INSTANTIATE(float)
ADASUM_INSTANTIATE(double)
#undef ADASUM_INSTANTIATE

DotTriple dot_triple_bytes(const std::byte* a, const std::byte* b,
                           std::size_t count, DType dtype) {
  double v[3];
  simd::active_table().dot_triple[idx(dtype)](a, b, count, v);
  return DotTriple{v[0], v[1], v[2]};
}

void scaled_sum_bytes(const std::byte* a, double ca, const std::byte* b,
                      double cb, std::byte* out, std::size_t count,
                      DType dtype) {
  simd::active_table().scaled_sum[idx(dtype)](a, ca, b, cb, out, count);
}

void add_bytes(const std::byte* x, std::byte* y, std::size_t count,
               DType dtype) {
  simd::active_table().add[idx(dtype)](x, y, count);
}

void scale_bytes(double alpha, std::byte* x, std::size_t count, DType dtype) {
  simd::active_table().scale[idx(dtype)](alpha, x, count);
}

double norm_squared_bytes(const std::byte* a, std::size_t count, DType dtype) {
  return simd::active_table().norm_squared[idx(dtype)](a, count);
}

bool has_nonfinite_bytes(const std::byte* a, std::size_t count, DType dtype) {
  return simd::active_table().has_nonfinite[idx(dtype)](a, count);
}

void copy_bytes(const std::byte* src, std::byte* dst, std::size_t count,
                DType dtype) {
  if (count == 0) return;
  std::memcpy(dst, src, count * dtype_size(dtype));
}

void stream_copy_bytes(const std::byte* src, std::byte* dst,
                       std::size_t bytes) {
  simd::active_table().stream_copy(src, dst, bytes);
}

}  // namespace adasum::kernels
