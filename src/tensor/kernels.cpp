// Thin wrappers over the runtime-dispatched SIMD kernel table. All size and
// dtype checking happens here, once, so the per-ISA implementations in
// tensor/simd/ stay branch-free; typed and byte entry points index the same
// table, which is what keeps every caller — in-place collectives, reference
// oracle, optimizers — numerically identical per dispatch level.
#include "tensor/kernels.h"

#include <cstring>

#include "base/check.h"
#include "tensor/parallel/pool.h"
#include "tensor/simd/simd.h"

namespace adasum::kernels {
namespace {

// The simd tables index kernels by the integer value of DType.
static_assert(static_cast<int>(DType::kFloat16) == simd::kF16);
static_assert(static_cast<int>(DType::kFloat32) == simd::kF32);
static_assert(static_cast<int>(DType::kFloat64) == simd::kF64);

template <typename T>
inline constexpr int kIdx = static_cast<int>(dtype_of<T>);

inline int idx(DType dtype) {
  const int i = static_cast<int>(dtype);
  ADASUM_CHECK(i >= 0 && i < simd::kNumDtypes);
  return i;
}

template <typename T>
const std::byte* bytes(const T* p) {
  return reinterpret_cast<const std::byte*>(p);
}
template <typename T>
std::byte* bytes(T* p) {
  return reinterpret_cast<std::byte*>(p);
}

// ---- intra-op tiling (DESIGN.md §17) --------------------------------------
//
// Elementwise kernels and stream_copy route through the parallel engine once
// the payload is big enough to amortize a pool handshake. The quantum keeps
// every tile boundary on a position where the monolithic kernel call would
// place a full vector group, so each element takes the exact instruction
// path (FMA grouping, scalar tail) it takes in the single-call case — tiled
// output is bit-identical to monolithic output, and therefore identical for
// every ADASUM_THREADS setting including off (which never reaches this
// path). Dot-family kernels are NOT tiled here: a tiled double accumulation
// cannot reproduce the monolithic accumulator sequence bitwise, so dots stay
// whole per call and parallelism for them comes from layer-level fan-out in
// the collectives (disjoint kernel calls are exact).

constexpr std::size_t kParallelMinBytes = std::size_t{1} << 20;
constexpr std::size_t kParallelGrainBytes = std::size_t{256} << 10;

inline std::size_t quantum_elems(DType dtype) {
  // 16 covers every vector group in the f32/f64 AVX2 elementwise bodies
  // (4/8/16-wide — group positions stay multiples of 4 and 8 under
  // 16-aligned splits); fp16 may split only at its 2048-element F16C staging
  // tile so the staged conversions stay put.
  return dtype == DType::kFloat16 ? std::size_t{2048} : std::size_t{16};
}

template <class Piece>
inline void tiled(std::size_t count, DType dtype, Piece&& piece) {
  if (count * dtype_size(dtype) < kParallelMinBytes || !parallel::enabled()) {
    piece(std::size_t{0}, count);
    return;
  }
  parallel::for_tiles(
      count, kParallelGrainBytes / dtype_size(dtype), quantum_elems(dtype),
      [&](std::size_t, std::size_t b, std::size_t e) { piece(b, e); });
}

}  // namespace

// Dot-family wrappers run monolithic on the caller at every ADASUM_THREADS
// setting (see the tiling note above).
template <typename T>
double dot(std::span<const T> a, std::span<const T> b) {
  ADASUM_CHECK_EQ(a.size(), b.size());
  return simd::active_table().dot[kIdx<T>](bytes(a.data()), bytes(b.data()),
                                           a.size());
}

template <typename T>
double norm_squared(std::span<const T> a) {
  return simd::active_table().norm_squared[kIdx<T>](bytes(a.data()), a.size());
}

template <typename T>
DotTriple dot_triple(std::span<const T> a, std::span<const T> b) {
  ADASUM_CHECK_EQ(a.size(), b.size());
  double v[3];
  simd::active_table().dot_triple[kIdx<T>](bytes(a.data()), bytes(b.data()),
                                           a.size(), v);
  return DotTriple{v[0], v[1], v[2]};
}

template <typename T>
void axpy(double alpha, std::span<const T> x, std::span<T> y) {
  ADASUM_CHECK_EQ(x.size(), y.size());
  auto* k = simd::active_table().axpy[kIdx<T>];
  tiled(x.size(), dtype_of<T>, [&](std::size_t b, std::size_t e) {
    k(alpha, bytes(x.data() + b), bytes(y.data() + b), e - b);
  });
}

template <typename T>
void scale(double alpha, std::span<T> x) {
  scale_bytes(alpha, bytes(x.data()), x.size(), dtype_of<T>);
}

template <typename T>
void add(std::span<const T> x, std::span<T> y) {
  ADASUM_CHECK_EQ(x.size(), y.size());
  add_bytes(bytes(x.data()), bytes(y.data()), x.size(), dtype_of<T>);
}

template <typename T>
void scaled_sum(std::span<const T> a, double ca, std::span<const T> b,
                double cb, std::span<T> out) {
  ADASUM_CHECK_EQ(a.size(), b.size());
  ADASUM_CHECK_EQ(a.size(), out.size());
  scaled_sum_bytes(bytes(a.data()), ca, bytes(b.data()), cb,
                   bytes(out.data()), a.size(), dtype_of<T>);
}

template <typename T>
bool has_nonfinite(std::span<const T> a) {
  return simd::active_table().has_nonfinite[kIdx<T>](bytes(a.data()),
                                                     a.size());
}

void half_to_float(std::span<const Half> src, std::span<float> dst) {
  ADASUM_CHECK_EQ(src.size(), dst.size());
  simd::active_table().half_to_float(
      reinterpret_cast<const std::uint16_t*>(src.data()), dst.data(),
      src.size());
}

void float_to_half(std::span<const float> src, std::span<Half> dst) {
  ADASUM_CHECK_EQ(src.size(), dst.size());
  simd::active_table().float_to_half(
      src.data(), reinterpret_cast<std::uint16_t*>(dst.data()), src.size());
}

// Explicit instantiations for the three supported payload dtypes.
#define ADASUM_INSTANTIATE(T)                                                  \
  template double dot<T>(std::span<const T>, std::span<const T>);              \
  template double norm_squared<T>(std::span<const T>);                         \
  template DotTriple dot_triple<T>(std::span<const T>, std::span<const T>);    \
  template void axpy<T>(double, std::span<const T>, std::span<T>);             \
  template void scale<T>(double, std::span<T>);                                \
  template void add<T>(std::span<const T>, std::span<T>);                      \
  template void scaled_sum<T>(std::span<const T>, double, std::span<const T>,  \
                              double, std::span<T>);                           \
  template bool has_nonfinite<T>(std::span<const T>);

ADASUM_INSTANTIATE(Half)
ADASUM_INSTANTIATE(float)
ADASUM_INSTANTIATE(double)
#undef ADASUM_INSTANTIATE

DotTriple dot_triple_bytes(const std::byte* a, const std::byte* b,
                           std::size_t count, DType dtype) {
  double v[3];
  simd::active_table().dot_triple[idx(dtype)](a, b, count, v);
  return DotTriple{v[0], v[1], v[2]};
}

void scaled_sum_bytes(const std::byte* a, double ca, const std::byte* b,
                      double cb, std::byte* out, std::size_t count,
                      DType dtype) {
  auto* k = simd::active_table().scaled_sum[idx(dtype)];
  const std::size_t es = dtype_size(dtype);
  tiled(count, dtype, [&](std::size_t b0, std::size_t e) {
    k(a + b0 * es, ca, b + b0 * es, cb, out + b0 * es, e - b0);
  });
}

void add_bytes(const std::byte* x, std::byte* y, std::size_t count,
               DType dtype) {
  auto* k = simd::active_table().add[idx(dtype)];
  const std::size_t es = dtype_size(dtype);
  tiled(count, dtype, [&](std::size_t b, std::size_t e) {
    k(x + b * es, y + b * es, e - b);
  });
}

void scale_bytes(double alpha, std::byte* x, std::size_t count, DType dtype) {
  auto* k = simd::active_table().scale[idx(dtype)];
  const std::size_t es = dtype_size(dtype);
  tiled(count, dtype, [&](std::size_t b, std::size_t e) {
    k(alpha, x + b * es, e - b);
  });
}

double norm_squared_bytes(const std::byte* a, std::size_t count, DType dtype) {
  return simd::active_table().norm_squared[idx(dtype)](a, count);
}

bool has_nonfinite_bytes(const std::byte* a, std::size_t count, DType dtype) {
  return simd::active_table().has_nonfinite[idx(dtype)](a, count);
}

void copy_bytes(const std::byte* src, std::byte* dst, std::size_t count,
                DType dtype) {
  if (count == 0) return;
  std::memcpy(dst, src, count * dtype_size(dtype));
}

void stream_copy_bytes(const std::byte* src, std::byte* dst,
                       std::size_t bytes) {
  auto* k = simd::active_table().stream_copy;
  // A pure byte copy is split-invariant; tiles stay >= 2 MiB so each keeps
  // the non-temporal path (the AVX2 body falls back to memcpy under 1 MiB).
  if (bytes < (std::size_t{4} << 20) || !parallel::enabled()) {
    k(src, dst, bytes);
    return;
  }
  parallel::for_tiles(bytes, std::size_t{2} << 20, std::size_t{64},
                      [&](std::size_t, std::size_t b, std::size_t e) {
                        k(src + b, dst + b, e - b);
                      });
}

}  // namespace adasum::kernels
