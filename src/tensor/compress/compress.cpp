#include "tensor/compress/compress.h"

#include <algorithm>

#include "base/check.h"
#include "tensor/parallel/pool.h"
#include "tensor/simd/simd.h"

namespace adasum {
namespace {

// ---- codec tiling (DESIGN.md §17) -----------------------------------------
//
// Codec passes split at BLOCK boundaries, so every per-block quantity
// (max/mean scale, nibble packing, sign bytes) is computed by exactly one
// tile and the tiled stream is bit-identical to the monolithic one. The
// stochastic-rounding counter is indexed by the span-global element index;
// sr_uniform hashes seed + i * kSrIndexStride with uint32 wraparound, so a
// tile starting at element b reproduces the global hashes by shifting its
// seed base instead of its indices.
constexpr std::uint32_t kSrIndexStride = 0x9E3779B9u;

constexpr std::size_t kCodecParallelMinBytes = std::size_t{1} << 20;

template <class Piece>
void codec_tiled(std::size_t n, std::size_t block_elems, Piece&& piece) {
  if (n * sizeof(float) < kCodecParallelMinBytes || !parallel::enabled()) {
    piece(std::size_t{0}, n);
    return;
  }
  const std::size_t grain = std::max(block_elems, std::size_t{65536});
  parallel::for_tiles(
      n, grain, block_elems,
      [&](std::size_t, std::size_t b, std::size_t e) { piece(b, e); });
}

// Fused reduce slices split at 16-element boundaries RELATIVE TO THE SLICE:
// the combine kernels partition their span into 4-lane groups from the slice
// start (matching scaled_sum), so 16-aligned sub-slices preserve every
// element's group membership — same quantum rule as tensor/kernels.cpp.
template <class Piece>
void fused_tiled(std::size_t n, Piece&& piece) {
  if (n * sizeof(float) < kCodecParallelMinBytes || !parallel::enabled()) {
    piece(std::size_t{0}, n);
    return;
  }
  parallel::for_tiles(
      n, std::size_t{65536}, std::size_t{16},
      [&](std::size_t, std::size_t b, std::size_t e) { piece(b, e); });
}

}  // namespace

void compress_f32(std::span<const float> values, const CompressionOptions& opts,
                  std::byte* dst) {
  ADASUM_CHECK(opts.active());
  const std::size_t n = values.size();
  const std::size_t be = opts.block_elems();
  const std::size_t blocks = compressed_num_blocks(n, opts);
  auto* scales = reinterpret_cast<float*>(dst);
  std::byte* payload = dst + blocks * sizeof(float);
  const simd::KernelTable& t = simd::active_table();
  codec_tiled(n, be, [&](std::size_t b, std::size_t e) {
    // b is a block multiple: scales, nibble pairs and sign bytes all start
    // fresh at b, and the shifted seed reproduces the global-index hashes.
    const std::uint32_t seed =
        opts.seed + static_cast<std::uint32_t>(b) * kSrIndexStride;
    float* sc = scales + b / be;
    const float* src_b = values.data() + b;
    const std::size_t len = e - b;
    switch (opts.mode) {
      case CompressionMode::kInt8:
        t.quantize_int8_blocks(src_b, len, be, seed, opts.stochastic, sc,
                               reinterpret_cast<std::int8_t*>(payload) + b);
        break;
      case CompressionMode::kInt4:
        t.quantize_int4_blocks(src_b, len, be, seed, opts.stochastic, sc,
                               reinterpret_cast<std::uint8_t*>(payload) + b / 2);
        break;
      case CompressionMode::kSign:
        t.quantize_sign_blocks(src_b, len, be, sc,
                               reinterpret_cast<std::uint8_t*>(payload) + b / 8);
        break;
      default:
        ADASUM_CHECK(false);
    }
  });
}

void decompress_f32(const std::byte* src, const CompressionOptions& opts,
                    std::span<float> values) {
  ADASUM_CHECK(opts.active());
  const std::size_t n = values.size();
  const std::size_t be = opts.block_elems();
  const std::size_t blocks = compressed_num_blocks(n, opts);
  const auto* scales = reinterpret_cast<const float*>(src);
  const std::byte* payload = src + blocks * sizeof(float);
  const simd::KernelTable& t = simd::active_table();
  codec_tiled(n, be, [&](std::size_t b, std::size_t e) {
    const float* sc = scales + b / be;
    float* dst_b = values.data() + b;
    const std::size_t len = e - b;
    switch (opts.mode) {
      case CompressionMode::kInt8:
        t.dequantize_int8_blocks(
            reinterpret_cast<const std::int8_t*>(payload) + b, len, be, sc,
            dst_b);
        break;
      case CompressionMode::kInt4:
        t.dequantize_int4_blocks(
            reinterpret_cast<const std::uint8_t*>(payload) + b / 2, len, be,
            sc, dst_b);
        break;
      case CompressionMode::kSign:
        t.dequantize_sign_blocks(
            reinterpret_cast<const std::uint8_t*>(payload) + b / 8, len, be,
            sc, dst_b);
        break;
      default:
        ADASUM_CHECK(false);
    }
  });
}

void decompress_add_f32(const std::byte* src, const CompressionOptions& opts,
                        std::size_t total, std::size_t offset,
                        std::span<float> dst) {
  ADASUM_CHECK(opts.active());
  ADASUM_CHECK(offset + dst.size() <= total);
  const std::size_t blocks = compressed_num_blocks(total, opts);
  const auto* scales = reinterpret_cast<const float*>(src);
  const std::byte* payload = src + blocks * sizeof(float);
  const std::size_t be = opts.block_elems();
  const simd::KernelTable& t = simd::active_table();
  fused_tiled(dst.size(), [&](std::size_t b, std::size_t e) {
    const std::size_t len = e - b;
    float* d = dst.data() + b;
    switch (opts.mode) {
      case CompressionMode::kInt8:
        t.dequant_add_int8(reinterpret_cast<const std::int8_t*>(payload),
                           scales, offset + b, len, be, d);
        break;
      case CompressionMode::kInt4:
        t.dequant_add_int4(reinterpret_cast<const std::uint8_t*>(payload),
                           scales, offset + b, len, be, d);
        break;
      case CompressionMode::kSign:
        t.dequant_add_sign(reinterpret_cast<const std::uint8_t*>(payload),
                           scales, offset + b, len, be, d);
        break;
      default:
        ADASUM_CHECK(false);
    }
  });
}

void decompress_combine_f32(const std::byte* src,
                            const CompressionOptions& opts, std::size_t total,
                            std::size_t offset, std::span<const float> other,
                            double c_other, double c_deq, bool deq_is_b,
                            std::span<float> out) {
  ADASUM_CHECK(opts.active());
  ADASUM_CHECK_EQ(other.size(), out.size());
  ADASUM_CHECK(offset + out.size() <= total);
  const std::size_t blocks = compressed_num_blocks(total, opts);
  const auto* scales = reinterpret_cast<const float*>(src);
  const std::byte* payload = src + blocks * sizeof(float);
  const std::size_t be = opts.block_elems();
  const simd::KernelTable& t = simd::active_table();
  fused_tiled(out.size(), [&](std::size_t b, std::size_t e) {
    const std::size_t len = e - b;
    const float* o = other.data() + b;
    float* d = out.data() + b;
    switch (opts.mode) {
      case CompressionMode::kInt8:
        t.dequant_combine_int8(o, c_other, c_deq, deq_is_b,
                               reinterpret_cast<const std::int8_t*>(payload),
                               scales, offset + b, len, be, d);
        break;
      case CompressionMode::kInt4:
        t.dequant_combine_int4(o, c_other, c_deq, deq_is_b,
                               reinterpret_cast<const std::uint8_t*>(payload),
                               scales, offset + b, len, be, d);
        break;
      case CompressionMode::kSign:
        t.dequant_combine_sign(o, c_other, c_deq, deq_is_b,
                               reinterpret_cast<const std::uint8_t*>(payload),
                               scales, offset + b, len, be, d);
        break;
      default:
        ADASUM_CHECK(false);
    }
  });
}

}  // namespace adasum
