#include "tensor/compress/compress.h"

#include "base/check.h"
#include "tensor/simd/simd.h"

namespace adasum {

void compress_f32(std::span<const float> values, const CompressionOptions& opts,
                  std::byte* dst) {
  ADASUM_CHECK(opts.active());
  const std::size_t n = values.size();
  const std::size_t blocks = compressed_num_blocks(n, opts);
  auto* scales = reinterpret_cast<float*>(dst);
  std::byte* payload = dst + blocks * sizeof(float);
  const simd::KernelTable& t = simd::active_table();
  switch (opts.mode) {
    case CompressionMode::kInt8:
      t.quantize_int8_blocks(values.data(), n, opts.block_elems(), opts.seed,
                             opts.stochastic, scales,
                             reinterpret_cast<std::int8_t*>(payload));
      break;
    case CompressionMode::kInt4:
      t.quantize_int4_blocks(values.data(), n, opts.block_elems(), opts.seed,
                             opts.stochastic, scales,
                             reinterpret_cast<std::uint8_t*>(payload));
      break;
    case CompressionMode::kSign:
      t.quantize_sign_blocks(values.data(), n, opts.block_elems(), scales,
                             reinterpret_cast<std::uint8_t*>(payload));
      break;
    default:
      ADASUM_CHECK(false);
  }
}

void decompress_f32(const std::byte* src, const CompressionOptions& opts,
                    std::span<float> values) {
  ADASUM_CHECK(opts.active());
  const std::size_t n = values.size();
  const std::size_t blocks = compressed_num_blocks(n, opts);
  const auto* scales = reinterpret_cast<const float*>(src);
  const std::byte* payload = src + blocks * sizeof(float);
  const simd::KernelTable& t = simd::active_table();
  switch (opts.mode) {
    case CompressionMode::kInt8:
      t.dequantize_int8_blocks(reinterpret_cast<const std::int8_t*>(payload),
                               n, opts.block_elems(), scales, values.data());
      break;
    case CompressionMode::kInt4:
      t.dequantize_int4_blocks(reinterpret_cast<const std::uint8_t*>(payload),
                               n, opts.block_elems(), scales, values.data());
      break;
    case CompressionMode::kSign:
      t.dequantize_sign_blocks(reinterpret_cast<const std::uint8_t*>(payload),
                               n, opts.block_elems(), scales, values.data());
      break;
    default:
      ADASUM_CHECK(false);
  }
}

}  // namespace adasum
