// Blockwise gradient compression for the allreduce wire (DESIGN.md §13).
//
// The paper's §6 positions gradient compression (1-bit SGD, its ref [33]) as
// a complementary axis to Adasum: compression shrinks each communication
// round, Adasum reduces how many rounds are needed. This module is the wire
// codec for that composition — three lossy fp32 payload encodings applied to
// TRANSFERRED bytes only, while every reduction (dot triples, sums) runs on
// decompressed values with double accumulation per §4.4.1:
//
//   int8  per-block scale = max|x|/127, 1 byte/elem   (~3.95x smaller)
//   int4  per-block scale = max|x|/7, packed nibbles  (~7.8x smaller)
//   sign  per-block scale = mean|x|, 1 bit/elem       (~24x smaller)
//
// Wire format per compressed span: [ceil(n/block) f32 scales][packed
// payload]. The per-tensor int8 path in tensor/quantize.h is the scalar
// ancestor of this format — a single block covering the whole tensor with
// round-to-nearest — and stays the oracle the blockwise tests compare
// against. Stochastic rounding is counter-based (a murmur3 finalizer of
// seed + element index), so the codec is a pure function of (bytes, options)
// with no RNG state: every rank compressing identical bytes produces an
// identical stream, which is what keeps replicas bit-identical through the
// compressed collectives (see collectives/compressed.h).
//
// Runtime control, mirroring ADASUM_PIPELINE: ADASUM_COMPRESS=off|int8|int4|
// sign selects the mode for every World constructed afterwards and
// ADASUM_COMPRESS_BLOCK overrides the block size (bytes of fp32 payload per
// scale). Tests and benches set options programmatically via
// World::set_compression.
//
// The options struct and the byte accounting are header-only so comm/ can
// hold them without linking the codec; compress/decompress live in
// compress.cpp and route through the dispatched SIMD tables.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <string_view>

namespace adasum {

// kAuto defers to the enclosing configuration (AllreduceOptions defers to
// the World, the World's from_env defaults to kNone); the collectives only
// ever see a resolved concrete mode.
enum class CompressionMode : std::uint8_t { kAuto, kNone, kInt8, kInt4, kSign };

inline const char* compression_mode_name(CompressionMode mode) {
  switch (mode) {
    case CompressionMode::kAuto:
      return "auto";
    case CompressionMode::kNone:
      return "off";
    case CompressionMode::kInt8:
      return "int8";
    case CompressionMode::kInt4:
      return "int4";
    case CompressionMode::kSign:
      return "sign";
  }
  return "?";
}

struct CompressionOptions {
  CompressionMode mode = CompressionMode::kAuto;
  // Quantization granularity: bytes of fp32 payload sharing one scale.
  // 1 KiB = 256 elements keeps the scale sideband at ~0.4% of the payload
  // while isolating outliers to their own block.
  std::size_t block_bytes = 1024;
  // Stochastic rounding keeps the quantizer unbiased (the chi-square test in
  // tests/compress_test.cpp); round-to-nearest-even otherwise.
  bool stochastic = true;
  // Base of the rounding counter. Fixed by default: determinism across
  // ranks is REQUIRED for replica consistency (see file comment).
  std::uint32_t seed = 0x9E3779B9u;

  bool active() const {
    return mode != CompressionMode::kAuto && mode != CompressionMode::kNone;
  }

  // Block length in elements: block_bytes floored to a multiple of 8, never
  // below 8, so int4 nibble pairs and sign-bit bytes never straddle blocks
  // (a kernel-table precondition).
  std::size_t block_elems() const {
    std::size_t e = block_bytes / sizeof(float);
    e -= e % 8;
    return e < 8 ? 8 : e;
  }

  static CompressionOptions from_env() {
    CompressionOptions o;
    o.mode = CompressionMode::kNone;
    if (const char* env = std::getenv("ADASUM_COMPRESS"); env != nullptr) {
      const std::string_view v(env);
      if (v == "int8") o.mode = CompressionMode::kInt8;
      else if (v == "int4") o.mode = CompressionMode::kInt4;
      else if (v == "sign" || v == "1bit") o.mode = CompressionMode::kSign;
    }
    if (const char* env = std::getenv("ADASUM_COMPRESS_BLOCK");
        env != nullptr) {
      const unsigned long long n = std::strtoull(env, nullptr, 10);
      if (n > 0) o.block_bytes = static_cast<std::size_t>(n);
    }
    return o;
  }
};

inline std::size_t compressed_num_blocks(std::size_t count,
                                         const CompressionOptions& opts) {
  const std::size_t be = opts.block_elems();
  return (count + be - 1) / be;
}

// Packed payload bytes, excluding the scale sideband.
inline std::size_t compressed_payload_bytes(std::size_t count,
                                            CompressionMode mode) {
  switch (mode) {
    case CompressionMode::kInt8:
      return count;
    case CompressionMode::kInt4:
      return (count + 1) / 2;
    case CompressionMode::kSign:
      return (count + 7) / 8;
    default:
      return count * sizeof(float);
  }
}

// Total bytes on the wire for `count` fp32 elements: the f32 scale sideband
// followed by the packed payload. Because of the sideband the MEASURED int8
// reduction is 4 / (1 + 4/block_elems) ≈ 3.95x at the default block, not a
// clean 4.0x — BENCH_compress.json reports both. Inactive options cost the
// uncompressed count * 4.
inline std::size_t compressed_wire_bytes(std::size_t count,
                                         const CompressionOptions& opts) {
  if (!opts.active() || count == 0) return count * sizeof(float);
  return compressed_num_blocks(count, opts) * sizeof(float) +
         compressed_payload_bytes(count, opts.mode);
}

// Codec entry points (compress.cpp). `dst`/`src` wire buffers hold
// compressed_wire_bytes(values.size(), opts) bytes, 4-byte aligned (the
// scale sideband is stored as raw floats; BufferPool leases satisfy this).
// `opts` must be active. Both route through the dispatched SIMD kernel
// table, and both are deterministic: scalar and AVX2 produce bit-identical
// streams (enforced by tests/compress_test.cpp).
void compress_f32(std::span<const float> values, const CompressionOptions& opts,
                  std::byte* dst);
void decompress_f32(const std::byte* src, const CompressionOptions& opts,
                    std::span<float> values);

// Fused single-pass decode-reduce (DESIGN.md §17). `src` is a wire stream
// encoding `total` elements; both calls reduce the decoded slice
// [offset, offset + n) straight into the caller's span, touching the wire
// bytes once with no decoded staging pass:
//
//   decompress_add_f32:     dst[i]  = dst[i] + decoded[offset + i]
//   decompress_combine_f32: out[i]  = ca * a[i] + cb * b[i], with the decoded
//                           slice as operand b (deq_is_b) or a, coefficient
//                           c_deq, and `other` in the remaining slot with
//                           c_other. `out` may alias `other` exactly.
//
// Bit contract: identical to decompress_f32 followed by kernels::add /
// scaled_sum on the same dispatch level (tests/parallel_test.cpp).
void decompress_add_f32(const std::byte* src, const CompressionOptions& opts,
                        std::size_t total, std::size_t offset,
                        std::span<float> dst);
void decompress_combine_f32(const std::byte* src,
                            const CompressionOptions& opts, std::size_t total,
                            std::size_t offset, std::span<const float> other,
                            double c_other, double c_deq, bool deq_is_b,
                            std::span<float> out);

}  // namespace adasum
