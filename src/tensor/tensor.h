// Tensor: a dynamically-typed contiguous buffer with a shape.
//
// This is deliberately minimal — the library needs flat gradient payloads
// (1-D) for communication, and 2-D/4-D shapes for the NN substrate. Layout is
// always dense row-major. Element type is one of DType; typed access goes
// through span<T>() which checks the dtype.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "base/check.h"
#include "tensor/dtype.h"

namespace adasum {

class Tensor {
 public:
  Tensor() = default;

  // Zero-initialized tensor of the given shape/dtype.
  explicit Tensor(std::vector<std::size_t> shape, DType dtype = DType::kFloat32);

  static Tensor zeros(std::vector<std::size_t> shape,
                      DType dtype = DType::kFloat32) {
    return Tensor(std::move(shape), dtype);
  }
  static Tensor full(std::vector<std::size_t> shape, double value,
                     DType dtype = DType::kFloat32);
  // 1-D tensor from explicit values (fp32 unless specified).
  static Tensor from_vector(const std::vector<double>& values,
                            DType dtype = DType::kFloat32);

  DType dtype() const { return dtype_; }
  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t i) const {
    ADASUM_CHECK_LT(i, shape_.size());
    return shape_[i];
  }
  std::size_t size() const { return size_; }
  std::size_t nbytes() const { return size_ * dtype_size(dtype_); }
  bool empty() const { return size_ == 0; }

  std::byte* data() { return storage_.data(); }
  const std::byte* data() const { return storage_.data(); }

  template <typename T>
  std::span<T> span() {
    ADASUM_CHECK_MSG(dtype_of<T> == dtype_,
                     "typed access with mismatched dtype on tensor of " +
                         dtype_name(dtype_));
    return {reinterpret_cast<T*>(storage_.data()), size_};
  }
  template <typename T>
  std::span<const T> span() const {
    ADASUM_CHECK_MSG(dtype_of<T> == dtype_,
                     "typed access with mismatched dtype on tensor of " +
                         dtype_name(dtype_));
    return {reinterpret_cast<const T*>(storage_.data()), size_};
  }

  // dtype-erased element access (converting through double). Convenient for
  // tests and the fp16 paths; hot loops use span<T>() instead.
  double at(std::size_t i) const;
  void set(std::size_t i, double value);

  // Reinterpret as a new shape with the same element count.
  Tensor reshaped(std::vector<std::size_t> shape) const;
  // Deep copy, optionally converting dtype.
  Tensor cast(DType dtype) const;
  Tensor clone() const { return cast(dtype_); }
  void fill(double value);

  std::string debug_string() const;

 private:
  std::vector<std::size_t> shape_;
  std::size_t size_ = 0;
  DType dtype_ = DType::kFloat32;
  std::vector<std::byte> storage_;
};

}  // namespace adasum
