#include "tensor/scaling.h"

#include <cmath>

#include "base/check.h"
#include "tensor/kernels.h"

namespace adasum {

DynamicScaler::DynamicScaler(const Options& options)
    : options_(options), scale_(options.initial_scale) {
  ADASUM_CHECK_GT(options_.initial_scale, 0.0);
  ADASUM_CHECK_GT(options_.growth_factor, 1.0);
  ADASUM_CHECK_GT(options_.backoff_factor, 0.0);
  ADASUM_CHECK_LT(options_.backoff_factor, 1.0);
}

bool DynamicScaler::update(bool overflowed) {
  if (overflowed) {
    scale_ = std::max(options_.min_scale, scale_ * options_.backoff_factor);
    good_steps_ = 0;
    ++num_backoffs_;
    return false;
  }
  if (++good_steps_ >= options_.growth_interval) {
    scale_ = std::min(options_.max_scale, scale_ * options_.growth_factor);
    good_steps_ = 0;
    ++num_growths_;
  }
  return true;
}

Tensor cast_to_fp16_scaled(const Tensor& t, double scale) {
  Tensor out(t.shape(), DType::kFloat16);
  auto dst = out.span<Half>();
  for (std::size_t i = 0; i < t.size(); ++i)
    dst[i] = Half(static_cast<float>(t.at(i) * scale));
  return out;
}

Tensor cast_from_fp16_scaled(const Tensor& t, double scale) {
  ADASUM_CHECK(t.dtype() == DType::kFloat16);
  ADASUM_CHECK_GT(scale, 0.0);
  Tensor out(t.shape(), DType::kFloat32);
  auto src = t.span<Half>();
  auto dst = out.span<float>();
  for (std::size_t i = 0; i < t.size(); ++i)
    dst[i] = static_cast<float>(static_cast<double>(static_cast<float>(src[i])) / scale);
  return out;
}

bool tensor_overflowed(const Tensor& t) {
  return dispatch_dtype(t.dtype(), [&]<typename T>() {
    return kernels::has_nonfinite(t.span<T>());
  });
}

}  // namespace adasum
