#include "tensor/scaling.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "tensor/kernels.h"

namespace adasum {

DynamicScaler::DynamicScaler(const Options& options)
    : options_(options), scale_(options.initial_scale) {
  ADASUM_CHECK_GT(options_.initial_scale, 0.0);
  ADASUM_CHECK_GT(options_.growth_factor, 1.0);
  ADASUM_CHECK_GT(options_.backoff_factor, 0.0);
  ADASUM_CHECK_LT(options_.backoff_factor, 1.0);
}

bool DynamicScaler::update(bool overflowed) {
  if (overflowed) {
    scale_ = std::max(options_.min_scale, scale_ * options_.backoff_factor);
    good_steps_ = 0;
    ++num_backoffs_;
    return false;
  }
  if (++good_steps_ >= options_.growth_interval) {
    scale_ = std::min(options_.max_scale, scale_ * options_.growth_factor);
    good_steps_ = 0;
    ++num_growths_;
  }
  return true;
}

namespace {

// Staging tile for the fp32 fast path below; matches the SIMD engine's fp16
// tile size so the bulk converter runs full-width (tensor/simd/kernels_avx2.cpp).
constexpr std::size_t kCastTile = 2048;

}  // namespace

Tensor cast_to_fp16_scaled(const Tensor& t, double scale) {
  Tensor out(t.shape(), DType::kFloat16);
  auto dst = out.span<Half>();
  if (t.dtype() == DType::kFloat32) {
    // Hot path (fp16 gradient payloads start life as fp32): scale into a
    // stack tile, then one dispatched bulk float->half conversion per tile.
    // Same arithmetic as the generic loop: double multiply, one rounding to
    // float, round-to-nearest-even to half.
    const auto src = t.span<float>();
    float tile[kCastTile];
    for (std::size_t off = 0; off < src.size(); off += kCastTile) {
      const std::size_t m = std::min(kCastTile, src.size() - off);
      for (std::size_t j = 0; j < m; ++j)
        tile[j] =
            static_cast<float>(static_cast<double>(src[off + j]) * scale);
      kernels::float_to_half(std::span<const float>(tile, m),
                             dst.subspan(off, m));
    }
    return out;
  }
  for (std::size_t i = 0; i < t.size(); ++i)
    dst[i] = Half(static_cast<float>(t.at(i) * scale));
  return out;
}

Tensor cast_from_fp16_scaled(const Tensor& t, double scale) {
  ADASUM_CHECK(t.dtype() == DType::kFloat16);
  ADASUM_CHECK_GT(scale, 0.0);
  Tensor out(t.shape(), DType::kFloat32);
  auto src = t.span<Half>();
  auto dst = out.span<float>();
  // Bulk half->float (exact), then the same double-divide/narrow sequence as
  // the seed's per-element loop.
  kernels::half_to_float(std::span<const Half>(src.data(), src.size()), dst);
  for (std::size_t i = 0; i < t.size(); ++i)
    dst[i] = static_cast<float>(static_cast<double>(dst[i]) / scale);
  return out;
}

bool tensor_overflowed(const Tensor& t) {
  return dispatch_dtype(t.dtype(), [&]<typename T>() {
    return kernels::has_nonfinite(t.span<T>());
  });
}

}  // namespace adasum
