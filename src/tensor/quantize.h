// Int8 gradient quantization with error feedback.
//
// The paper's §6 discusses gradient-compression methods (1-bit SGD, low-rank
// PowerSGD) as a complementary axis to Adasum: they shrink each
// communication round, Adasum reduces how many rounds are needed. This
// module provides the standard building block — symmetric per-tensor int8
// quantization (x ≈ q * scale, scale = max|x| / 127) plus the error-feedback
// residual that makes biased compressors converge (Seide et al., the
// paper's [33]) — and the DistributedOptimizer exposes it as an optional
// payload compression for the effective gradients, mirroring its fp16 path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace adasum {

struct Int8Quantized {
  std::vector<std::int8_t> data;
  float scale = 0.0f;  // x ≈ data[i] * scale

  std::size_t wire_bytes() const { return data.size() + sizeof(float); }
};

// Symmetric per-tensor quantization; an all-zero input yields scale 0.
Int8Quantized quantize_int8(std::span<const float> values);

// out[i] = q.data[i] * q.scale. `out.size()` must equal `q.data.size()`.
void dequantize_int8(const Int8Quantized& q, std::span<float> out);

// Zero-allocation variants for hot paths (DESIGN.md §8): identical
// arithmetic to the struct API, but the caller owns the storage — the
// DistributedOptimizer's per-round compression runs on pooled scratch
// instead of a fresh vector per tensor per round. `out.size()` must equal
// `values.size()`; returns the scale.
float quantize_int8_into(std::span<const float> values,
                         std::span<std::int8_t> out);
void dequantize_int8(std::span<const std::int8_t> data, float scale,
                     std::span<float> out);

// Error-feedback accumulator for a fixed-layout set of tensors: before
// compressing, add the residual left over from the previous round; after
// compressing, store the new residual (original - transmitted).
class ErrorFeedback {
 public:
  // `sizes` fixes the per-tensor element counts (layout must not change).
  explicit ErrorFeedback(std::vector<std::size_t> sizes);

  // Adds tensor `index`'s residual into `values` in place.
  void compensate(std::size_t index, std::span<float> values);
  // Records residual = values - transmitted for tensor `index`.
  void record(std::size_t index, std::span<const float> values,
              std::span<const float> transmitted);

  double residual_norm_squared() const;

 private:
  std::vector<std::vector<float>> residuals_;
};

}  // namespace adasum
