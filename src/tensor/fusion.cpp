#include "tensor/fusion.h"

#include "base/check.h"
#include "tensor/kernels.h"

namespace adasum {

std::vector<std::vector<std::size_t>> make_fusion_groups(
    const std::vector<const Tensor*>& tensors, std::size_t threshold_bytes) {
  ADASUM_CHECK_GT(threshold_bytes, 0u);
  std::vector<std::vector<std::size_t>> groups;
  std::vector<std::size_t> current;
  std::size_t current_bytes = 0;
  for (std::size_t i = 0; i < tensors.size(); ++i) {
    const std::size_t bytes = tensors[i]->nbytes();
    if (!current.empty() && current_bytes + bytes > threshold_bytes) {
      groups.push_back(std::move(current));
      current.clear();
      current_bytes = 0;
    }
    current.push_back(i);
    current_bytes += bytes;
  }
  if (!current.empty()) groups.push_back(std::move(current));
  return groups;
}

FusedTensor fuse(const std::vector<const Tensor*>& tensors,
                 const std::vector<std::string>* names) {
  ADASUM_CHECK(!tensors.empty());
  const DType dtype = tensors[0]->dtype();
  std::size_t total = 0;
  for (const Tensor* t : tensors) {
    ADASUM_CHECK_MSG(t->dtype() == dtype,
                     "all tensors in a fusion group must share a dtype");
    total += t->size();
  }
  if (names != nullptr) ADASUM_CHECK_EQ(names->size(), tensors.size());

  FusedTensor out;
  out.flat = Tensor({total}, dtype);
  out.slices.reserve(tensors.size());
  const std::size_t elem = dtype_size(dtype);
  std::size_t offset = 0;
  for (std::size_t i = 0; i < tensors.size(); ++i) {
    const Tensor* t = tensors[i];
    kernels::copy_bytes(t->data(), out.flat.data() + offset * elem, t->size(),
                        dtype);
    out.slices.push_back(TensorSlice{
        names != nullptr ? (*names)[i] : "t" + std::to_string(i), offset,
        t->size()});
    offset += t->size();
  }
  return out;
}

namespace {

// Does the existing boundary table already describe this pack, including the
// names it would be given? Checking instead of rebuilding avoids N string
// constructions per step once the layout settles.
bool table_matches(const std::vector<TensorSlice>& slices,
                   const std::vector<const Tensor*>& tensors,
                   const std::vector<std::string>* names) {
  if (slices.size() != tensors.size()) return false;
  std::size_t offset = 0;
  for (std::size_t i = 0; i < tensors.size(); ++i) {
    const TensorSlice& s = slices[i];
    if (s.offset != offset || s.count != tensors[i]->size()) return false;
    if (names != nullptr) {
      if (s.name != (*names)[i]) return false;
    } else {
      if (s.name != "t" + std::to_string(i)) return false;
    }
    offset += s.count;
  }
  return true;
}

}  // namespace

FusedTensor& FusionBuffer::pack(const std::vector<const Tensor*>& tensors,
                                const std::vector<std::string>* names) {
  ADASUM_CHECK(!tensors.empty());
  const DType dtype = tensors[0]->dtype();
  std::size_t total = 0;
  for (const Tensor* t : tensors) {
    ADASUM_CHECK_MSG(t->dtype() == dtype,
                     "all tensors in a fusion group must share a dtype");
    total += t->size();
  }
  if (names != nullptr) ADASUM_CHECK_EQ(names->size(), tensors.size());
  ++stats_.packs;

  if (fused_.flat.size() == total && fused_.flat.dtype() == dtype &&
      fused_.flat.size() > 0) {
    ++stats_.buffer_reuses;
  } else {
    fused_.flat = Tensor({total}, dtype);
  }

  const bool keep_table = table_matches(fused_.slices, tensors, names);
  if (keep_table) {
    ++stats_.table_reuses;
  } else {
    fused_.slices.clear();
    fused_.slices.reserve(tensors.size());
  }

  const std::size_t elem = dtype_size(dtype);
  std::size_t offset = 0;
  for (std::size_t i = 0; i < tensors.size(); ++i) {
    const Tensor* t = tensors[i];
    kernels::copy_bytes(t->data(), fused_.flat.data() + offset * elem,
                        t->size(), dtype);
    if (!keep_table) {
      fused_.slices.push_back(TensorSlice{
          names != nullptr ? (*names)[i] : "t" + std::to_string(i), offset,
          t->size()});
    }
    offset += t->size();
  }
  return fused_;
}

void FusionBuffer::unpack(const std::vector<Tensor*>& tensors) const {
  unfuse(fused_, tensors);
}

void unfuse(const FusedTensor& fused, const std::vector<Tensor*>& tensors) {
  ADASUM_CHECK_EQ(tensors.size(), fused.slices.size());
  const std::size_t elem = dtype_size(fused.flat.dtype());
  for (std::size_t i = 0; i < tensors.size(); ++i) {
    Tensor* t = tensors[i];
    const TensorSlice& s = fused.slices[i];
    ADASUM_CHECK_EQ(t->size(), s.count);
    ADASUM_CHECK_MSG(t->dtype() == fused.flat.dtype(),
                     "unfuse destination dtype mismatch");
    kernels::copy_bytes(fused.flat.data() + s.offset * elem, t->data(),
                        s.count, fused.flat.dtype());
  }
}

}  // namespace adasum
