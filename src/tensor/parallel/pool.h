// Intra-op parallel reduction engine (DESIGN.md §17).
//
// A process-wide, fixed-size helper-thread pool behind a deterministic
// `parallel_for` over fixed tiles. The contract that makes it safe to drop
// into numerical hot paths:
//
//   * The tile decomposition is a PURE FUNCTION of (n, grain, quantum) —
//     never of the thread count, the pool state, or scheduling. Callers pick
//     a quantum that preserves each element's exact instruction path in the
//     underlying kernel (see tensor/kernels.cpp), so a tiled call is
//     bit-identical to the monolithic call and therefore bit-identical for
//     every ADASUM_THREADS value, `off` included.
//   * Per-tile outputs land in caller-owned, tile-indexed storage; any
//     combine runs on the caller in ascending tile order. Which thread
//     executed a tile is unobservable.
//   * The submit path performs no heap allocation (helpers spawn once, the
//     job descriptor is inline) and never blocks on a busy pool: if another
//     job is in flight the caller simply runs its own tiles serially — so
//     concurrent rank threads on one process degrade to the seed behavior
//     instead of queueing.
//
// Thread budget: ADASUM_THREADS=<n>|auto|off (default off). `off` keeps the
// seed path byte- and allocation-identical — parallel_for is never reached
// (callers check enabled() first). n counts workers INCLUDING the caller, so
// 1 exercises the tiled code path with zero helpers. The handshake uses the
// sync:: layer exclusively, so the PR 9 model checker and the TSan pass can
// audit it, and the spin policy is oversubscription-aware like the shm
// transport's (a 1-core box yields instead of pause-spinning).
#pragma once

#include <cstddef>
#include <utility>

#include "verify/sync.h"

namespace adasum::parallel {

// Upper bound on tiles per job: per-tile partial storage in callers is a
// fixed stack array, and 64 tiles saturate any pool this size.
inline constexpr std::size_t kMaxTiles = 64;
// Upper bound on total workers (helpers + caller).
inline constexpr int kMaxThreads = 16;

// Resolved worker budget: 0 = off (the default), n >= 1 = n workers
// including the caller. Fixed from ADASUM_THREADS at first call; configure()
// overrides it programmatically.
int threads();
inline bool enabled() { return threads() >= 1; }

// Programmatic override (benches/tests measure several settings in one
// process). Joins existing helpers and respawns; must not race in-flight
// parallel_for calls. 0 disables the engine entirely.
void configure(int workers);

// The ADASUM_THREADS string as seen at resolution time ("off" when unset),
// for bench headers.
const char* env_setting();

// Fixed tile decomposition. Boundaries are multiples of `quantum` (except
// the final end = n), tiles hold at least `grain` elements (except when
// n < grain), and the tile count never exceeds kMaxTiles.
struct Tiling {
  std::size_t count = 1;  // number of tiles
  std::size_t n = 0;
  std::size_t quantum = 1;

  std::size_t begin(std::size_t t) const {
    const std::size_t pos = n * t / count;
    return pos - pos % quantum;
  }
  std::size_t end(std::size_t t) const {
    return t + 1 == count ? n : begin(t + 1);
  }
};

inline Tiling tiles_for(std::size_t n, std::size_t grain,
                        std::size_t quantum) {
  if (grain == 0) grain = 1;
  if (quantum == 0) quantum = 1;
  std::size_t count = grain > 0 ? n / grain : n;
  if (count > kMaxTiles) count = kMaxTiles;
  if (count < 1) count = 1;
  return Tiling{count, n, quantum};
}

// Invokes fn(ctx, tile, begin, end) for every tile of `t` exactly once, on
// an unspecified worker, and returns when all tiles have completed. Empty
// tiles (begin == end, possible under a coarse quantum) are skipped. Falls
// back to serial in-order execution when the pool is off, busy, or under a
// model-check runtime.
using TileFn = void (*)(void* ctx, std::size_t tile, std::size_t begin,
                        std::size_t end);
void parallel_for(const Tiling& t, TileFn fn, void* ctx);

// Type-erasing convenience: f(tile, begin, end). `f` lives on the caller's
// stack for the duration of the call — no allocation.
template <class F>
void for_tiles(std::size_t n, std::size_t grain, std::size_t quantum, F&& f) {
  const Tiling t = tiles_for(n, grain, quantum);
  auto& fn = f;
  parallel_for(
      t,
      [](void* ctx, std::size_t tile, std::size_t b, std::size_t e) {
        (*static_cast<std::remove_reference_t<F>*>(ctx))(tile, b, e);
      },
      const_cast<void*>(static_cast<const void*>(&fn)));
}

}  // namespace adasum::parallel
