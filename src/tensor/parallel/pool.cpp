#include "tensor/parallel/pool.h"

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace adasum::parallel {
namespace {

// The process-wide pool. All job-descriptor fields are written by the
// submitter under `m` before the epoch bump and read by helpers under `m`
// while they commit to the epoch, so they need no atomics.
struct Pool {
  sync::mutex m;
  sync::condition_variable wake;  // helpers sleep here between jobs
  sync::condition_variable idle;  // submitter waits here for stragglers

  // Guarded by m -----------------------------------------------------------
  std::uint64_t epoch = 0;   // bumped once per job
  Tiling tiling;             // current job
  TileFn fn = nullptr;
  void* ctx = nullptr;
  int committed = 0;         // helpers inside the current job's claim loop
  bool shutdown = false;
  int helpers_spawned = 0;
  // ------------------------------------------------------------------------

  // Claim/progress counters for the in-flight job. next_tile hands out tile
  // indices; done_tiles counts completed tiles. The submitter resets both
  // under m before the epoch bump, and waits for committed == 0 before
  // returning, so a reset can never race a straggler's claim loop.
  sync::atomic<std::size_t> next_tile{0};
  sync::atomic<std::size_t> done_tiles{0};

  // One job at a time: a caller that loses this try_lock runs serially.
  sync::mutex job;

  // Current budget incl. caller (0 = off). Atomic so the per-call threads()
  // read stays lock-free on the kernel hot path.
  sync::atomic<int> workers{0};
  bool oversubscribed = false;  // written in apply(), read under `job`
  std::vector<sync::thread> threads;

  ~Pool() { stop_helpers(); }

  void stop_helpers() {
    {
      sync::unique_lock<sync::mutex> lk(m);
      if (helpers_spawned == 0) return;
      shutdown = true;
    }
    wake.notify_all();
    for (auto& t : threads) t.join();
    threads.clear();
    {
      sync::unique_lock<sync::mutex> lk(m);
      shutdown = false;
      helpers_spawned = 0;
    }
  }
};

void run_tiles(const Tiling& t, TileFn fn, void* ctx,
               sync::atomic<std::size_t>& next,
               sync::atomic<std::size_t>& done) {
  for (;;) {
    const std::size_t tile = next.fetch_add(1, std::memory_order_acq_rel);
    if (tile >= t.count) return;
    const std::size_t b = t.begin(tile);
    const std::size_t e = t.end(tile);
    if (e > b) fn(ctx, tile, b, e);
    // release: the tile's output writes happen-before any observer of the
    // completed count.
    done.fetch_add(1, std::memory_order_release);
  }
}

void helper_main(Pool* p) {
  std::uint64_t seen = 0;
  for (;;) {
    Tiling t;
    TileFn fn = nullptr;
    void* ctx = nullptr;
    {
      sync::unique_lock<sync::mutex> lk(p->m);
      p->wake.wait(lk, [&] { return p->shutdown || p->epoch != seen; });
      if (p->shutdown) return;
      seen = p->epoch;
      t = p->tiling;
      fn = p->fn;
      ctx = p->ctx;
      ++p->committed;  // the submitter cannot return until we drop this
    }
    run_tiles(t, fn, ctx, p->next_tile, p->done_tiles);
    bool last = false;
    {
      sync::unique_lock<sync::mutex> lk(p->m);
      last = --p->committed == 0;
    }
    if (last) p->idle.notify_one();
  }
}

Pool& pool() {
  static Pool p;
  return p;
}

int clamp_workers(long v) {
  if (v < 0) return 0;
  if (v > kMaxThreads) return kMaxThreads;
  return static_cast<int>(v);
}

const char* g_env_setting = "off";

int resolve_env() {
  const char* env = std::getenv("ADASUM_THREADS");
  if (env == nullptr || env[0] == '\0') return 0;
  g_env_setting = env;
  const std::string v(env);
  if (v == "off" || v == "0") return 0;
  if (v == "auto") {
    const unsigned hc = std::thread::hardware_concurrency();
    return clamp_workers(hc == 0 ? 1 : static_cast<long>(hc));
  }
  char* end = nullptr;
  const long n = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || n < 0) return 0;  // unparsable -> off
  return clamp_workers(n);
}

// Applies a worker budget: joins any existing helpers (they respawn lazily
// on the next submitted job). Takes the job mutex so an in-flight
// parallel_for finishes against the old pool first.
void apply(int workers) {
  Pool& p = pool();
  sync::lock_guard<sync::mutex> job_lk(p.job);
  const int n = clamp_workers(workers);
  if (p.workers.load(std::memory_order_acquire) == n) return;
  p.stop_helpers();
  const unsigned hc = std::thread::hardware_concurrency();
  p.oversubscribed = hc != 0 && static_cast<int>(hc) < n;
  p.workers.store(n, std::memory_order_release);
}

// ADASUM_THREADS is resolved exactly once, before the first read of the
// budget — including a read from inside configure(), so a programmatic
// configure() always wins over the environment regardless of call order.
void resolve_once() {
  static const bool resolved = [] {
    apply(resolve_env());
    return true;
  }();
  (void)resolved;
}

// Helpers are spawned lazily on the first submitted job, not at resolution:
// ADASUM_THREADS=auto with no parallel work must stay thread-free, and the
// one-time spawn allocation lands before any steady-state window a bench
// measures (benches run a warm-up step before arming the heap hook).
void ensure_helpers(Pool& p) {
  const int want = p.workers.load(std::memory_order_acquire) - 1;
  sync::unique_lock<sync::mutex> lk(p.m);
  if (p.helpers_spawned >= want) return;
  if (p.threads.capacity() < static_cast<std::size_t>(want)) {
    p.threads.reserve(static_cast<std::size_t>(want));
  }
  for (int i = p.helpers_spawned; i < want; ++i) {
    p.threads.emplace_back([&p] { helper_main(&p); });
  }
  p.helpers_spawned = want;
}

// Completion-wait spin budget, oversubscription-aware like the shm
// transport's progress spin: on a box with fewer cores than workers the
// helpers need the caller's core, so burn almost no cycles before yielding
// into the condition variable.
constexpr int kSpinIters = 2048;
constexpr int kOversubscribedSpinIters = 16;

}  // namespace

int threads() {
  resolve_once();
  return pool().workers.load(std::memory_order_acquire);
}

const char* env_setting() {
  resolve_once();
  return g_env_setting;
}

void configure(int workers) {
  resolve_once();
  apply(workers);
}

void parallel_for(const Tiling& t, TileFn fn, void* ctx) {
  Pool& p = pool();
  const int workers = threads();
  const bool serial_only = workers <= 1 || t.count <= 1
#if ADASUM_VERIFY
                           // Under a model-check runtime, pool helpers would
                           // register with a Runtime that dies before this
                           // process-wide pool — run the tiles in place.
                           || verify::current() != nullptr
#endif
      ;
  // Serial path: same decomposition, ascending order — bit-identical to the
  // pooled path by the quantum contract, so every fallback below is safe.
  if (serial_only || !p.job.try_lock()) {
    for (std::size_t tile = 0; tile < t.count; ++tile) {
      const std::size_t b = t.begin(tile);
      const std::size_t e = t.end(tile);
      if (e > b) fn(ctx, tile, b, e);
    }
    return;
  }
  ensure_helpers(p);
  {
    sync::unique_lock<sync::mutex> lk(p.m);
    p.tiling = t;
    p.fn = fn;
    p.ctx = ctx;
    // relaxed: both counters are republished by the epoch bump below — the
    // mutex release orders them before any helper's committed read, and no
    // thread touches them between jobs (committed == 0 was awaited).
    p.next_tile.store(0, std::memory_order_relaxed);
    p.done_tiles.store(0, std::memory_order_relaxed);
    ++p.epoch;
  }
  p.wake.notify_all();
  run_tiles(t, fn, ctx, p.next_tile, p.done_tiles);
  // Fast path: the caller usually finishes the last tile itself; spin a
  // bounded budget on the progress counter before falling back to the cv.
  const int budget =
      sync::spin_budget(p.oversubscribed ? kOversubscribedSpinIters : kSpinIters);
  for (int i = 0; i < budget; ++i) {
    if (p.done_tiles.load(std::memory_order_acquire) >= t.count) break;
    if (p.oversubscribed) {
      sync::spin_yield();
    } else {
      sync::cpu_relax();
    }
  }
  {
    // Stragglers may still sit between their last claim and committed--;
    // wait them out so the next job's counter reset cannot race their claim
    // loop.
    sync::unique_lock<sync::mutex> lk(p.m);
    p.idle.wait(lk, [&] {
      return p.committed == 0 &&
             p.done_tiles.load(std::memory_order_acquire) >= t.count;
    });
  }
  p.job.unlock();
}

}  // namespace adasum::parallel
