// Runtime SIMD dispatch for the Adasum hot-loop kernels (DESIGN.md §10).
//
// The binary carries one kernel table per supported ISA level. At first use
// the dispatcher picks the widest level that (a) was compiled in (toolchain
// probe), (b) the CPU reports via CPUID, and (c) the ADASUM_SIMD environment
// variable allows:
//
//   ADASUM_SIMD=scalar   force the scalar oracle kernels
//   ADASUM_SIMD=avx2     request AVX2+FMA+F16C (falls back to scalar, with a
//                        warning, when the build or the CPU lacks it)
//   ADASUM_SIMD=auto     (or unset) widest available level
//
// The choice is made once per process; scripts/check.sh runs the test suite
// under both `auto` and `scalar`. Tests that need both tables in one process
// use table_for() directly, which ignores the environment override.
#pragma once

#include "tensor/simd/kernel_table.h"

namespace adasum::simd {

const char* level_name(Level level);

// Runtime CPUID result: AVX2, FMA and F16C all present.
bool cpu_has_avx2();

// True when the AVX2 translation unit was compiled into this binary.
bool built_with_avx2();

// Level selected from the build, CPUID and ADASUM_SIMD; fixed at first call.
Level active_level();

// Table for active_level(). All kernels in tensor/kernels.h route through it.
// Under auto selection this is the TUNED table: entries where the measured
// AVX2 body loses to the scalar loop (BENCH_kernels.json) hold the scalar
// pointer instead. An explicit ADASUM_SIMD=avx2 returns the raw AVX2 table.
const KernelTable& active_table();

// Table for a specific level, or nullptr when that level is unavailable
// (not compiled in, or the CPU lacks the ISA). Ignores ADASUM_SIMD.
const KernelTable* table_for(Level level);

}  // namespace adasum::simd
