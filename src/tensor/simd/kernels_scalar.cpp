// Scalar kernel table: the seed loops from tensor/kernels.cpp, unchanged.
//
// This TU is compiled with the baseline ISA flags and doubles as the oracle
// for every vector path — the property tests in tests/simd_test.cpp hold the
// AVX2 table to ulp-bounded agreement with these loops, and ADASUM_SIMD=scalar
// forces the whole binary onto them. The loop structure (independent partial
// accumulators, double accumulation per §4.4.1) must therefore stay exactly
// as the seed wrote it: any change here silently moves the yardstick.
#include <cmath>

#include "base/half.h"
#include "tensor/simd/kernel_table.h"

namespace adasum::simd {
namespace {

// Loads an element as double. For Half this is the fp16->fp32->fp64 widening;
// for float/double it is a plain conversion the compiler folds into the loop.
template <typename T>
inline double load(const T& v) {
  return static_cast<double>(v);
}
inline double load(const Half& v) {
  return static_cast<double>(static_cast<float>(v));
}

template <typename T>
inline T store(double v) {
  return static_cast<T>(v);
}
template <>
inline Half store<Half>(double v) {
  return Half(static_cast<float>(v));
}

template <typename T>
double dot_impl(const T* a, const T* b, std::size_t n) {
  // Four independent accumulators: breaks the loop-carried dependence so the
  // compiler can vectorize / software-pipeline the reduction.
  double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += load(a[i + 0]) * load(b[i + 0]);
    s1 += load(a[i + 1]) * load(b[i + 1]);
    s2 += load(a[i + 2]) * load(b[i + 2]);
    s3 += load(a[i + 3]) * load(b[i + 3]);
  }
  for (; i < n; ++i) s0 += load(a[i]) * load(b[i]);
  return (s0 + s1) + (s2 + s3);
}

template <typename T>
void dot_triple_impl(const T* a, const T* b, std::size_t n, double out[3]) {
  double ab0 = 0, ab1 = 0, aa0 = 0, aa1 = 0, bb0 = 0, bb1 = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const double x0 = load(a[i]), y0 = load(b[i]);
    const double x1 = load(a[i + 1]), y1 = load(b[i + 1]);
    ab0 += x0 * y0;
    aa0 += x0 * x0;
    bb0 += y0 * y0;
    ab1 += x1 * y1;
    aa1 += x1 * x1;
    bb1 += y1 * y1;
  }
  if (i < n) {
    const double x = load(a[i]), y = load(b[i]);
    ab0 += x * y;
    aa0 += x * x;
    bb0 += y * y;
  }
  out[0] = ab0 + ab1;
  out[1] = aa0 + aa1;
  out[2] = bb0 + bb1;
}

template <typename T>
void axpy_impl(double alpha, const T* x, T* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    y[i] = store<T>(load(y[i]) + alpha * load(x[i]));
}

template <typename T>
void scale_impl(double alpha, T* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = store<T>(alpha * load(x[i]));
}

template <typename T>
void add_impl(const T* x, T* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    y[i] = store<T>(load(y[i]) + load(x[i]));
}

template <typename T>
void scaled_sum_impl(const T* a, double ca, const T* b, double cb, T* out,
                     std::size_t n) {
  // Pure elementwise pass: out == a and out == b (exact aliasing) are safe.
  for (std::size_t i = 0; i < n; ++i)
    out[i] = store<T>(ca * load(a[i]) + cb * load(b[i]));
}

template <typename T>
bool has_nonfinite_impl(const T* a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (!std::isfinite(load(a[i]))) return true;
  return false;
}

// ---- byte-signature shims filling the table ------------------------------

template <typename T>
const T* in(const std::byte* p) {
  return reinterpret_cast<const T*>(p);
}
template <typename T>
T* out_ptr(std::byte* p) {
  return reinterpret_cast<T*>(p);
}

template <typename T>
double k_dot(const std::byte* a, const std::byte* b, std::size_t n) {
  return dot_impl(in<T>(a), in<T>(b), n);
}
template <typename T>
double k_norm_squared(const std::byte* a, std::size_t n) {
  return dot_impl(in<T>(a), in<T>(a), n);
}
template <typename T>
void k_dot_triple(const std::byte* a, const std::byte* b, std::size_t n,
                  double out[3]) {
  dot_triple_impl(in<T>(a), in<T>(b), n, out);
}
template <typename T>
void k_axpy(double alpha, const std::byte* x, std::byte* y, std::size_t n) {
  axpy_impl(alpha, in<T>(x), out_ptr<T>(y), n);
}
template <typename T>
void k_scale(double alpha, std::byte* x, std::size_t n) {
  scale_impl(alpha, out_ptr<T>(x), n);
}
template <typename T>
void k_add(const std::byte* x, std::byte* y, std::size_t n) {
  add_impl(in<T>(x), out_ptr<T>(y), n);
}
template <typename T>
void k_scaled_sum(const std::byte* a, double ca, const std::byte* b, double cb,
                  std::byte* out, std::size_t n) {
  scaled_sum_impl(in<T>(a), ca, in<T>(b), cb, out_ptr<T>(out), n);
}
template <typename T>
bool k_has_nonfinite(const std::byte* a, std::size_t n) {
  return has_nonfinite_impl(in<T>(a), n);
}

// Batched software fp16 converters: the same bit logic as per-element Half
// access (half.h keeps it header-inline precisely so this loop and Half can
// never diverge), but in a flat loop the compiler can pipeline without a
// call per element.
void sw_half_to_float(const std::uint16_t* src, float* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = Half::bits_to_float(src[i]);
}
void sw_float_to_half(const float* src, std::uint16_t* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = Half::float_to_bits(src[i]);
}

}  // namespace

const KernelTable& scalar_table() {
  static constexpr KernelTable table = {
      "scalar",
      {k_dot<Half>, k_dot<float>, k_dot<double>},
      {k_norm_squared<Half>, k_norm_squared<float>, k_norm_squared<double>},
      {k_dot_triple<Half>, k_dot_triple<float>, k_dot_triple<double>},
      {k_axpy<Half>, k_axpy<float>, k_axpy<double>},
      {k_scale<Half>, k_scale<float>, k_scale<double>},
      {k_add<Half>, k_add<float>, k_add<double>},
      {k_scaled_sum<Half>, k_scaled_sum<float>, k_scaled_sum<double>},
      {k_has_nonfinite<Half>, k_has_nonfinite<float>, k_has_nonfinite<double>},
      sw_half_to_float,
      sw_float_to_half,
  };
  return table;
}

}  // namespace adasum::simd
