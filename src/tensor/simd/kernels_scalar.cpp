// Scalar kernel table: the seed loops from tensor/kernels.cpp, unchanged.
//
// This TU is compiled with the baseline ISA flags and doubles as the oracle
// for every vector path — the property tests in tests/simd_test.cpp hold the
// AVX2 table to ulp-bounded agreement with these loops, and ADASUM_SIMD=scalar
// forces the whole binary onto them. The loop structure (independent partial
// accumulators, double accumulation per §4.4.1) must therefore stay exactly
// as the seed wrote it: any change here silently moves the yardstick.
#include <algorithm>
#include <cmath>
#include <cstring>

#include "base/half.h"
#include "tensor/simd/kernel_table.h"

namespace adasum::simd {
namespace {

// Loads an element as double. For Half this is the fp16->fp32->fp64 widening;
// for float/double it is a plain conversion the compiler folds into the loop.
template <typename T>
inline double load(const T& v) {
  return static_cast<double>(v);
}
inline double load(const Half& v) {
  return static_cast<double>(static_cast<float>(v));
}

template <typename T>
inline T store(double v) {
  return static_cast<T>(v);
}
template <>
inline Half store<Half>(double v) {
  return Half(static_cast<float>(v));
}

template <typename T>
double dot_impl(const T* a, const T* b, std::size_t n) {
  // Four independent accumulators: breaks the loop-carried dependence so the
  // compiler can vectorize / software-pipeline the reduction.
  double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += load(a[i + 0]) * load(b[i + 0]);
    s1 += load(a[i + 1]) * load(b[i + 1]);
    s2 += load(a[i + 2]) * load(b[i + 2]);
    s3 += load(a[i + 3]) * load(b[i + 3]);
  }
  for (; i < n; ++i) s0 += load(a[i]) * load(b[i]);
  return (s0 + s1) + (s2 + s3);
}

template <typename T>
void dot_triple_impl(const T* a, const T* b, std::size_t n, double out[3]) {
  double ab0 = 0, ab1 = 0, aa0 = 0, aa1 = 0, bb0 = 0, bb1 = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const double x0 = load(a[i]), y0 = load(b[i]);
    const double x1 = load(a[i + 1]), y1 = load(b[i + 1]);
    ab0 += x0 * y0;
    aa0 += x0 * x0;
    bb0 += y0 * y0;
    ab1 += x1 * y1;
    aa1 += x1 * x1;
    bb1 += y1 * y1;
  }
  if (i < n) {
    const double x = load(a[i]), y = load(b[i]);
    ab0 += x * y;
    aa0 += x * x;
    bb0 += y * y;
  }
  out[0] = ab0 + ab1;
  out[1] = aa0 + aa1;
  out[2] = bb0 + bb1;
}

template <typename T>
void axpy_impl(double alpha, const T* x, T* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    y[i] = store<T>(load(y[i]) + alpha * load(x[i]));
}

template <typename T>
void scale_impl(double alpha, T* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = store<T>(alpha * load(x[i]));
}

template <typename T>
void add_impl(const T* x, T* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    y[i] = store<T>(load(y[i]) + load(x[i]));
}

template <typename T>
void scaled_sum_impl(const T* a, double ca, const T* b, double cb, T* out,
                     std::size_t n) {
  // Pure elementwise pass: out == a and out == b (exact aliasing) are safe.
  for (std::size_t i = 0; i < n; ++i)
    out[i] = store<T>(ca * load(a[i]) + cb * load(b[i]));
}

template <typename T>
bool has_nonfinite_impl(const T* a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (!std::isfinite(load(a[i]))) return true;
  return false;
}

// ---- byte-signature shims filling the table ------------------------------

template <typename T>
const T* in(const std::byte* p) {
  return reinterpret_cast<const T*>(p);
}
template <typename T>
T* out_ptr(std::byte* p) {
  return reinterpret_cast<T*>(p);
}

template <typename T>
double k_dot(const std::byte* a, const std::byte* b, std::size_t n) {
  return dot_impl(in<T>(a), in<T>(b), n);
}
template <typename T>
double k_norm_squared(const std::byte* a, std::size_t n) {
  return dot_impl(in<T>(a), in<T>(a), n);
}
template <typename T>
void k_dot_triple(const std::byte* a, const std::byte* b, std::size_t n,
                  double out[3]) {
  dot_triple_impl(in<T>(a), in<T>(b), n, out);
}
template <typename T>
void k_axpy(double alpha, const std::byte* x, std::byte* y, std::size_t n) {
  axpy_impl(alpha, in<T>(x), out_ptr<T>(y), n);
}
template <typename T>
void k_scale(double alpha, std::byte* x, std::size_t n) {
  scale_impl(alpha, out_ptr<T>(x), n);
}
template <typename T>
void k_add(const std::byte* x, std::byte* y, std::size_t n) {
  add_impl(in<T>(x), out_ptr<T>(y), n);
}
template <typename T>
void k_scaled_sum(const std::byte* a, double ca, const std::byte* b, double cb,
                  std::byte* out, std::size_t n) {
  scaled_sum_impl(in<T>(a), ca, in<T>(b), cb, out_ptr<T>(out), n);
}
template <typename T>
bool k_has_nonfinite(const std::byte* a, std::size_t n) {
  return has_nonfinite_impl(in<T>(a), n);
}

// ---- blockwise compression casts (DESIGN.md §13) --------------------------
//
// The scalar reference for the compressed-collective wire format. Every
// floating-point operation here is mirrored one-for-one by the AVX2 TU
// (same op, same order, same single-precision intermediates), which is what
// makes the cross-TU bit-parity tests in tests/compress_test.cpp hold. This
// TU is compiled without FMA, so no contraction can reassociate the
// mul-then-add sequences below.

// Counter-based stochastic-rounding uniform: murmur3 finalizer of
// (seed + golden-ratio * index), mapped to [0, 1) through the top 24 bits so
// the int -> float conversion is exact. Pure integer math plus one exact
// multiply — identical in every TU by construction.
inline float sr_uniform(std::uint32_t seed, std::uint32_t i) {
  std::uint32_t h = seed + i * 0x9E3779B9u;
  h ^= h >> 16;
  h *= 0x85EBCA6Bu;
  h ^= h >> 13;
  h *= 0xC2B2AE35u;
  h ^= h >> 16;
  return static_cast<float>(h >> 8) * (1.0f / 16777216.0f);
}

inline float block_max_abs(const float* src, std::size_t s, std::size_t e) {
  float m = 0.0f;
  for (std::size_t i = s; i < e; ++i) m = std::max(m, std::fabs(src[i]));
  return m;
}

// Rounds v (= x/scale) to an integer level in [-kMax, kMax]. The clamp runs
// AFTER rounding: floor(v + u) can land exactly one level above kMax in
// float when v is already kMax-point-something.
template <int kMax>
inline float quantized_level(float v, std::uint32_t seed, std::uint32_t i,
                             bool stochastic) {
  const float r = stochastic ? std::floor(v + sr_uniform(seed, i))
                             : std::nearbyint(v);
  return std::min(static_cast<float>(kMax),
                  std::max(static_cast<float>(-kMax), r));
}

// Walks one block, handing each element's rounded level to `emit`. The
// reciprocal path (one multiply per element) is the common case; when
// 1/scale is not finite (denormal block max) it falls back to dividing by
// the max, which keeps every level exact instead of producing inf * 0.
template <int kMax, typename Emit>
void quantize_block(const float* src, std::size_t s, std::size_t e,
                    std::uint32_t seed, bool stochastic, float* scale_out,
                    Emit&& emit) {
  const float m = block_max_abs(src, s, e);
  const float scale = m / static_cast<float>(kMax);
  *scale_out = scale;
  if (m == 0.0f) {
    for (std::size_t i = s; i < e; ++i) emit(i, 0.0f);
    return;
  }
  const float inv = 1.0f / scale;
  if (std::isfinite(inv)) {
    for (std::size_t i = s; i < e; ++i)
      emit(i, quantized_level<kMax>(src[i] * inv, seed,
                                    static_cast<std::uint32_t>(i), stochastic));
  } else {
    for (std::size_t i = s; i < e; ++i)
      emit(i, quantized_level<kMax>((src[i] / m) * static_cast<float>(kMax),
                                    seed, static_cast<std::uint32_t>(i),
                                    stochastic));
  }
}

void sc_quantize_int8_blocks(const float* src, std::size_t n,
                             std::size_t block, std::uint32_t seed,
                             bool stochastic, float* scales, std::int8_t* q) {
  std::size_t b = 0;
  for (std::size_t s = 0; s < n; s += block, ++b) {
    const std::size_t e = std::min(n, s + block);
    quantize_block<127>(src, s, e, seed, stochastic, &scales[b],
                        [&](std::size_t i, float r) {
                          q[i] = static_cast<std::int8_t>(r);
                        });
  }
}

void sc_dequantize_int8_blocks(const std::int8_t* q, std::size_t n,
                               std::size_t block, const float* scales,
                               float* dst) {
  std::size_t b = 0;
  for (std::size_t s = 0; s < n; s += block, ++b) {
    const std::size_t e = std::min(n, s + block);
    const float scale = scales[b];
    for (std::size_t i = s; i < e; ++i)
      dst[i] = static_cast<float>(q[i]) * scale;
  }
}

void sc_quantize_int4_blocks(const float* src, std::size_t n,
                             std::size_t block, std::uint32_t seed,
                             bool stochastic, float* scales,
                             std::uint8_t* packed) {
  // `block` is a multiple of 8, so nibble pairs never straddle blocks and
  // byte i/2 is written low-nibble-first; an odd-length span leaves the
  // final high nibble zero.
  std::size_t b = 0;
  for (std::size_t s = 0; s < n; s += block, ++b) {
    const std::size_t e = std::min(n, s + block);
    quantize_block<7>(
        src, s, e, seed, stochastic, &scales[b], [&](std::size_t i, float r) {
          const auto nib =
              static_cast<std::uint8_t>(static_cast<std::int8_t>(r)) & 0x0Fu;
          if ((i & 1) == 0)
            packed[i / 2] = static_cast<std::uint8_t>(nib);
          else
            packed[i / 2] = static_cast<std::uint8_t>(packed[i / 2] | (nib << 4));
        });
  }
}

void sc_dequantize_int4_blocks(const std::uint8_t* packed, std::size_t n,
                               std::size_t block, const float* scales,
                               float* dst) {
  std::size_t b = 0;
  for (std::size_t s = 0; s < n; s += block, ++b) {
    const std::size_t e = std::min(n, s + block);
    const float scale = scales[b];
    for (std::size_t i = s; i < e; ++i) {
      const int nib = (i & 1) ? (packed[i / 2] >> 4) : (packed[i / 2] & 0x0F);
      dst[i] = static_cast<float>((nib ^ 8) - 8) * scale;  // sign-extend
    }
  }
}

void sc_quantize_sign_blocks(const float* src, std::size_t n,
                             std::size_t block, float* scales,
                             std::uint8_t* bits) {
  std::size_t b = 0;
  for (std::size_t s = 0; s < n; s += block, ++b) {
    const std::size_t e = std::min(n, s + block);
    // 8-lane-structured |x| sum with a fixed tree reduction — exactly the
    // shape an AVX2 accumulator plus its horizontal add produces, so the
    // scale matches bit-for-bit across TUs.
    float acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (std::size_t i = s; i < e; ++i) acc[(i - s) & 7] += std::fabs(src[i]);
    float s4[4];
    for (int j = 0; j < 4; ++j) s4[j] = acc[j] + acc[j + 4];
    const float total = (s4[0] + s4[2]) + (s4[1] + s4[3]);
    scales[b] = total / static_cast<float>(e - s);
    // Block starts are multiples of 8, so bit i%8 of byte i/8 never
    // straddles a block; each byte is zeroed when its first bit arrives.
    for (std::size_t i = s; i < e; ++i) {
      if ((i & 7) == 0) bits[i / 8] = 0;
      if (!std::signbit(src[i]))
        bits[i / 8] = static_cast<std::uint8_t>(bits[i / 8] | (1u << (i & 7)));
    }
  }
}

void sc_dequantize_sign_blocks(const std::uint8_t* bits, std::size_t n,
                               std::size_t block, const float* scales,
                               float* dst) {
  std::size_t b = 0;
  for (std::size_t s = 0; s < n; s += block, ++b) {
    const std::size_t e = std::min(n, s + block);
    const float scale = scales[b];
    // Negation is exact, so a zero-scale block decodes to ±0 with the sign
    // bit preserved — the parity tests compare these floats bitwise.
    for (std::size_t i = s; i < e; ++i)
      dst[i] = ((bits[i / 8] >> (i & 7)) & 1) ? scale : -scale;
  }
}

// ---- fused dequantize-reduce (DESIGN.md §17) -------------------------------
//
// Each fused loop composes the per-element dequant expressions from the
// sc_dequantize_*_blocks loops above with the add_impl / scaled_sum_impl
// arithmetic, in the same order: the decoded value is one correctly-rounded
// float multiply either way, and the combine is the exact double-precision
// expression of the elementwise kernels — so fused output is bitwise equal
// to the two-pass composition by construction. `i` is the GLOBAL element
// index (slice offset + local index): block lookup, nibble parity and sign
// bit all derive from it, which is what lets a caller reduce an arbitrary
// slice of an encoded span in place.
//
// The scale lookup is strength-reduced through ScaleCursor: `block` is a
// runtime divisor, so a literal scales[i / block] costs a hardware DIV per
// element that dominates the whole fused loop. The cursor pays one division
// at construction and a compare-and-bump per element after that. Only the
// LOOKUP changes — the decode multiply sees the identical scale value, so
// the bit contract is untouched.

// scales[g / block] for a non-decreasing stream of global indices g. `next`
// is the global index where the current scale expires.
struct ScaleCursor {
  const float* scales;
  std::size_t block;
  std::size_t blk;
  std::size_t next;
  float scale;

  ScaleCursor(const float* scales_, std::size_t block_, std::size_t start)
      : scales(scales_), block(block_), blk(start / block_) {
    next = (blk + 1) * block;
    scale = scales[blk];
  }
  float at(std::size_t g) {
    while (g >= next) {
      ++blk;
      next += block;
      scale = scales[blk];
    }
    return scale;
  }
};

inline float deq_int8_at(const std::int8_t* q, std::size_t i, float scale) {
  return static_cast<float>(q[i]) * scale;
}
inline float deq_int4_at(const std::uint8_t* packed, std::size_t i,
                         float scale) {
  const int nib = (i & 1) ? (packed[i / 2] >> 4) : (packed[i / 2] & 0x0F);
  return static_cast<float>((nib ^ 8) - 8) * scale;
}
inline float deq_sign_at(const std::uint8_t* bits, std::size_t i, float scale) {
  return ((bits[i / 8] >> (i & 7)) & 1) ? scale : -scale;
}

inline float fused_add_one(float acc, float d) {
  return static_cast<float>(static_cast<double>(acc) +
                            static_cast<double>(d));
}
inline float fused_combine_one(float other, double c_other, double c_deq,
                               bool deq_is_b, float d) {
  // scaled_sum(a, ca, b, cb) with the decoded value in the slot `deq_is_b`
  // selects; the operand order is kept literal so the composition argument
  // needs no commutativity reasoning.
  const double av = deq_is_b ? static_cast<double>(other)
                             : static_cast<double>(d);
  const double bv = deq_is_b ? static_cast<double>(d)
                             : static_cast<double>(other);
  const double ca = deq_is_b ? c_other : c_deq;
  const double cb = deq_is_b ? c_deq : c_other;
  return static_cast<float>(ca * av + cb * bv);
}

void sc_dequant_add_int8(const std::int8_t* q, const float* scales,
                         std::size_t offset, std::size_t n, std::size_t block,
                         float* dst) {
  ScaleCursor cur(scales, block, offset);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t g = offset + i;
    dst[i] = fused_add_one(dst[i], deq_int8_at(q, g, cur.at(g)));
  }
}
void sc_dequant_add_int4(const std::uint8_t* packed, const float* scales,
                         std::size_t offset, std::size_t n, std::size_t block,
                         float* dst) {
  ScaleCursor cur(scales, block, offset);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t g = offset + i;
    dst[i] = fused_add_one(dst[i], deq_int4_at(packed, g, cur.at(g)));
  }
}
void sc_dequant_add_sign(const std::uint8_t* bits, const float* scales,
                         std::size_t offset, std::size_t n, std::size_t block,
                         float* dst) {
  ScaleCursor cur(scales, block, offset);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t g = offset + i;
    dst[i] = fused_add_one(dst[i], deq_sign_at(bits, g, cur.at(g)));
  }
}

void sc_dequant_combine_int8(const float* other, double c_other, double c_deq,
                             bool deq_is_b, const std::int8_t* q,
                             const float* scales, std::size_t offset,
                             std::size_t n, std::size_t block, float* out) {
  ScaleCursor cur(scales, block, offset);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t g = offset + i;
    out[i] = fused_combine_one(other[i], c_other, c_deq, deq_is_b,
                               deq_int8_at(q, g, cur.at(g)));
  }
}
void sc_dequant_combine_int4(const float* other, double c_other, double c_deq,
                             bool deq_is_b, const std::uint8_t* packed,
                             const float* scales, std::size_t offset,
                             std::size_t n, std::size_t block, float* out) {
  ScaleCursor cur(scales, block, offset);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t g = offset + i;
    out[i] = fused_combine_one(other[i], c_other, c_deq, deq_is_b,
                               deq_int4_at(packed, g, cur.at(g)));
  }
}
void sc_dequant_combine_sign(const float* other, double c_other, double c_deq,
                             bool deq_is_b, const std::uint8_t* bits,
                             const float* scales, std::size_t offset,
                             std::size_t n, std::size_t block, float* out) {
  ScaleCursor cur(scales, block, offset);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t g = offset + i;
    out[i] = fused_combine_one(other[i], c_other, c_deq, deq_is_b,
                               deq_sign_at(bits, g, cur.at(g)));
  }
}

// Batched software fp16 converters: the same bit logic as per-element Half
// access (half.h keeps it header-inline precisely so this loop and Half can
// never diverge), but in a flat loop the compiler can pipeline without a
// call per element.
void sw_half_to_float(const std::uint16_t* src, float* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = Half::bits_to_float(src[i]);
}
void sw_float_to_half(const float* src, std::uint16_t* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = Half::float_to_bits(src[i]);
}

// Baseline stream_copy: plain memcpy (no cache-bypass path without vector
// stores; the contract is only "copies the bytes").
void sw_stream_copy(const std::byte* src, std::byte* dst, std::size_t bytes) {
  if (bytes != 0) std::memcpy(dst, src, bytes);
}

}  // namespace

const KernelTable& scalar_table() {
  static constexpr KernelTable table = {
      "scalar",
      {k_dot<Half>, k_dot<float>, k_dot<double>},
      {k_norm_squared<Half>, k_norm_squared<float>, k_norm_squared<double>},
      {k_dot_triple<Half>, k_dot_triple<float>, k_dot_triple<double>},
      {k_axpy<Half>, k_axpy<float>, k_axpy<double>},
      {k_scale<Half>, k_scale<float>, k_scale<double>},
      {k_add<Half>, k_add<float>, k_add<double>},
      {k_scaled_sum<Half>, k_scaled_sum<float>, k_scaled_sum<double>},
      {k_has_nonfinite<Half>, k_has_nonfinite<float>, k_has_nonfinite<double>},
      sw_half_to_float,
      sw_float_to_half,
      sw_stream_copy,
      sc_quantize_int8_blocks,
      sc_dequantize_int8_blocks,
      sc_quantize_int4_blocks,
      sc_dequantize_int4_blocks,
      sc_quantize_sign_blocks,
      sc_dequantize_sign_blocks,
      sc_dequant_add_int8,
      sc_dequant_add_int4,
      sc_dequant_add_sign,
      sc_dequant_combine_int8,
      sc_dequant_combine_int4,
      sc_dequant_combine_sign,
  };
  return table;
}

}  // namespace adasum::simd
