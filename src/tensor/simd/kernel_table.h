// Function-pointer kernel table shared by the SIMD dispatch layer.
//
// This header is deliberately minimal: it is included by the ISA-specific
// translation units (kernels_avx2.cpp is compiled with -mavx2 -mfma -mf16c),
// and any inline function it pulled in could be emitted with AVX encodings
// there and then be picked by the linker for baseline TUs. Only <cstddef> and
// <cstdint> — no project headers.
//
// Entries are dtype-erased (std::byte* + element count) and indexed by the
// integer value of adasum::DType (kFloat16=0, kFloat32=1, kFloat64=2 —
// static_asserted in tensor/kernels.cpp). Size/overlap preconditions are
// checked by the public wrappers in tensor/kernels.h, not here.
#pragma once

#include <cstddef>
#include <cstdint>

namespace adasum::simd {

enum class Level : int { kScalar = 0, kAvx2 = 1 };

inline constexpr int kNumDtypes = 3;
inline constexpr int kF16 = 0;
inline constexpr int kF32 = 1;
inline constexpr int kF64 = 2;

struct KernelTable {
  const char* name;

  // Reductions accumulate in double regardless of payload dtype (§4.4.1).
  double (*dot[kNumDtypes])(const std::byte* a, const std::byte* b,
                            std::size_t n);
  double (*norm_squared[kNumDtypes])(const std::byte* a, std::size_t n);
  // out[0]=a·b, out[1]=a·a, out[2]=b·b in one pass (Algorithm 1 line 15).
  void (*dot_triple[kNumDtypes])(const std::byte* a, const std::byte* b,
                                 std::size_t n, double out[3]);

  // Elementwise ops; arithmetic in double, rounded once to the payload dtype.
  void (*axpy[kNumDtypes])(double alpha, const std::byte* x, std::byte* y,
                           std::size_t n);
  void (*scale[kNumDtypes])(double alpha, std::byte* x, std::size_t n);
  void (*add[kNumDtypes])(const std::byte* x, std::byte* y, std::size_t n);
  // out[i] = ca*a[i] + cb*b[i]. `out` may alias `a` or `b` exactly (the
  // in-place AdasumRVH combine writes over its own operand); implementations
  // must load each chunk before storing it. Partial overlap is forbidden.
  void (*scaled_sum[kNumDtypes])(const std::byte* a, double ca,
                                 const std::byte* b, double cb, std::byte* out,
                                 std::size_t n);
  bool (*has_nonfinite[kNumDtypes])(const std::byte* a, std::size_t n);

  // Bulk fp16 <-> fp32 conversion (F16C when available, batched software
  // otherwise). The uint16_t values are IEEE binary16 bit patterns — the
  // storage representation of adasum::Half.
  void (*half_to_float)(const std::uint16_t* src, float* dst, std::size_t n);
  void (*float_to_half)(const float* src, std::uint16_t* dst, std::size_t n);

  // Bulk byte copy for one-shot landings the destination will not re-read
  // soon (a zero-copy receive depositing a peer's published span into the
  // caller's buffer). The vector implementation uses non-temporal stores —
  // skipping the read-for-ownership of every destination cache line cuts the
  // copy's memory traffic from 3x to 2x the payload — and fences before
  // returning, so a subsequent release-publish of `dst` is safe. Regions
  // must not overlap; small or misaligned copies fall back to memcpy.
  void (*stream_copy)(const std::byte* src, std::byte* dst,
                      std::size_t bytes);

  // ---- blockwise compression casts (DESIGN.md §13) -------------------------
  //
  // fp32 payloads only (the compress layer rejects other dtypes before
  // dispatch). `block` is the block length in ELEMENTS — a multiple of 8 and
  // at least 8, so int4 nibble pairs and sign bytes never straddle a block
  // boundary; the final block may be short. `scales` holds ceil(n/block)
  // floats, one per block.
  //
  // Contract shared by both TUs, bit-for-bit (tests/compress_test.cpp):
  //  * int8:  scale_b = max|block| / 127, q in [-127, 127], x ≈ q * scale_b.
  //  * int4:  scale_b = max|block| / 7, q in [-7, 7], two elements per byte
  //           with the EVEN index in the low nibble (two's complement).
  //  * sign:  scale_b = mean|block| via an 8-lane-structured sum (the lane
  //           assignment is part of the contract so scalar and AVX2 agree
  //           exactly); payload bit i of byte i/8 (LSB first) is set when
  //           the sign BIT of x is clear (so -0.0 counts as negative), and
  //           x ≈ ±scale_b.
  //  * An all-zero block stores scale 0 and a zero payload. When 1/scale_b
  //    is not finite (denormal max), both TUs fall back to dividing by the
  //    block max instead of multiplying by the reciprocal.
  //  * `seed` plus the span-relative element index drive the counter-based
  //    stochastic-rounding hash (floor(x/scale + u), u in [0,1) from a
  //    murmur3 finalizer); stochastic=false rounds to nearest-even. Inputs
  //    must be finite — NaN/inf propagation is the caller's overflow check.
  void (*quantize_int8_blocks)(const float* src, std::size_t n,
                               std::size_t block, std::uint32_t seed,
                               bool stochastic, float* scales, std::int8_t* q);
  void (*dequantize_int8_blocks)(const std::int8_t* q, std::size_t n,
                                 std::size_t block, const float* scales,
                                 float* dst);
  void (*quantize_int4_blocks)(const float* src, std::size_t n,
                               std::size_t block, std::uint32_t seed,
                               bool stochastic, float* scales,
                               std::uint8_t* packed);
  void (*dequantize_int4_blocks)(const std::uint8_t* packed, std::size_t n,
                                 std::size_t block, const float* scales,
                                 float* dst);
  void (*quantize_sign_blocks)(const float* src, std::size_t n,
                               std::size_t block, float* scales,
                               std::uint8_t* bits);
  void (*dequantize_sign_blocks)(const std::uint8_t* bits, std::size_t n,
                                 std::size_t block, const float* scales,
                                 float* dst);

  // ---- fused dequantize-reduce (DESIGN.md §17) -----------------------------
  //
  // Single-pass decode + reduce for the compressed collectives: one read of
  // the wire payload, one read-modify-write of the accumulator, no decoded
  // scratch pass. `q`/`packed`/`bits` and `scales` address the WHOLE encoded
  // span (same layout as the casts above); `offset` is the global element
  // index where this call's slice begins — block index, nibble parity and
  // sign-bit position all derive from offset+i — and `n` is the slice length.
  // `dst`/`other`/`out` address the slice directly (their element 0 is global
  // element `offset`).
  //
  // Bit contract (tests/parallel_test.cpp): within one TU, dequant_add_* is
  // bitwise equal to dequantize-then-add composed from the SAME table, and
  // dequant_combine_* to dequantize-then-scaled_sum with the decoded operand
  // in the position selected by `deq_is_b` (b when true, a when false) and
  // coefficient `c_deq`, the in-memory operand taking the other slot with
  // `c_other`. `out` may alias `other` exactly; partial overlap is forbidden.
  void (*dequant_add_int8)(const std::int8_t* q, const float* scales,
                           std::size_t offset, std::size_t n,
                           std::size_t block, float* dst);
  void (*dequant_add_int4)(const std::uint8_t* packed, const float* scales,
                           std::size_t offset, std::size_t n,
                           std::size_t block, float* dst);
  void (*dequant_add_sign)(const std::uint8_t* bits, const float* scales,
                           std::size_t offset, std::size_t n,
                           std::size_t block, float* dst);
  void (*dequant_combine_int8)(const float* other, double c_other,
                               double c_deq, bool deq_is_b,
                               const std::int8_t* q, const float* scales,
                               std::size_t offset, std::size_t n,
                               std::size_t block, float* out);
  void (*dequant_combine_int4)(const float* other, double c_other,
                               double c_deq, bool deq_is_b,
                               const std::uint8_t* packed, const float* scales,
                               std::size_t offset, std::size_t n,
                               std::size_t block, float* out);
  void (*dequant_combine_sign)(const float* other, double c_other,
                               double c_deq, bool deq_is_b,
                               const std::uint8_t* bits, const float* scales,
                               std::size_t offset, std::size_t n,
                               std::size_t block, float* out);
};

// Defined in kernels_scalar.cpp; always available, bit-identical to the seed
// scalar loops — the oracle the property tests compare vector paths against.
const KernelTable& scalar_table();

#if defined(ADASUM_SIMD_HAVE_AVX2)
// Defined in kernels_avx2.cpp, which is only compiled (with per-TU ISA flags)
// when the toolchain probe in src/tensor/CMakeLists.txt succeeds.
const KernelTable& avx2_table();
#endif

}  // namespace adasum::simd
