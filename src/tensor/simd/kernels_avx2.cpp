// AVX2+FMA+F16C kernel table.
//
// This is the ONLY translation unit compiled with -mavx2 -mfma -mf16c (see
// src/tensor/CMakeLists.txt); everything it defines is reached exclusively
// through the function pointers in avx2_table(), which dispatch.cpp hands out
// only after CPUID confirms the ISA. It deliberately includes no project
// header beyond kernel_table.h so no baseline-inline function can be emitted
// here with AVX encodings and then be chosen by the linker for scalar TUs.
//
// Numerical contract (DESIGN.md §10):
//  * §4.4.1 survives vectorization: reductions widen every lane to double
//    before multiplying and keep 64-bit accumulators; only the number of
//    independent partial sums differs from the scalar oracle, so results
//    agree to ulp-level reassociation error and are run-to-run deterministic
//    (fixed lane count, fixed unroll — no data-dependent reduction order).
//  * Elementwise kernels compute in double and round once to the payload
//    dtype, the same store sequence as the scalar path.
//  * fp16 payloads are staged through stack tiles with F16C bulk conversion
//    (exact in the fp16->fp32 direction), so the fp16 kernels are the fp32
//    loops plus two conversions — no pooled or heap allocation, preserving
//    the zero-allocation steady state from DESIGN.md §8.
#if defined(ADASUM_SIMD_HAVE_AVX2)

#include <immintrin.h>

#include <cmath>
#include <cstring>

#include "tensor/simd/kernel_table.h"

namespace adasum::simd {
namespace {

// fp16 staging tile: 2048 elements = 8 KiB per float tile, at most three
// tiles (16/24 KiB) of stack per kernel. A multiple of 16 so every tile but
// the last feeds the vector bodies with no intra-tile tail, keeping the
// accumulator lane assignment identical whether the payload arrived as one
// span or tile-by-tile.
constexpr std::size_t kTile = 2048;

// Widen 4 floats straight from memory: vcvtps2pd takes a 128-bit memory
// operand, so the load folds into the convert — no 256-bit load plus
// cross-lane extract. Narrowing stores likewise go out as 128-bit halves
// instead of paying a vinsertf128 per 8 elements; both halve the
// shuffle-port traffic that otherwise bounds these widen/narrow loops.
inline __m256d cvt4_pd(const float* p) {
  return _mm256_cvtps_pd(_mm_loadu_ps(p));
}
inline void store4_ps(float* p, __m256d v) {
  _mm_storeu_ps(p, _mm256_cvtpd_ps(v));
}
inline double hsum(__m256d v) {
  __m128d s = _mm_add_pd(_mm256_castpd256_pd128(v),
                         _mm256_extractf128_pd(v, 1));
  s = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
  return _mm_cvtsd_f64(s);
}

// ---- bulk fp16 <-> fp32 conversion (F16C) --------------------------------

void h2f(const std::uint16_t* src, float* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i h0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i h1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 8));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h0));
    _mm256_storeu_ps(dst + i + 8, _mm256_cvtph_ps(h1));
  }
  if (i < n) {
    // Stage the tail through a zero-padded buffer: no out-of-bounds loads,
    // and the converted garbage lanes are never copied out.
    std::uint16_t hbuf[16] = {};
    float fbuf[16];
    std::memcpy(hbuf, src + i, (n - i) * sizeof(std::uint16_t));
    _mm256_storeu_ps(fbuf, _mm256_cvtph_ps(_mm_loadu_si128(
                               reinterpret_cast<const __m128i*>(hbuf))));
    _mm256_storeu_ps(fbuf + 8, _mm256_cvtph_ps(_mm_loadu_si128(
                                   reinterpret_cast<const __m128i*>(hbuf + 8))));
    std::memcpy(dst + i, fbuf, (n - i) * sizeof(float));
  }
}

constexpr int kRound = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;

void f2h(const float* src, std::uint16_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i h0 = _mm256_cvtps_ph(_mm256_loadu_ps(src + i), kRound);
    const __m128i h1 = _mm256_cvtps_ph(_mm256_loadu_ps(src + i + 8), kRound);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 8), h1);
  }
  if (i < n) {
    float fbuf[16] = {};
    std::uint16_t hbuf[16];
    std::memcpy(fbuf, src + i, (n - i) * sizeof(float));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(hbuf),
                     _mm256_cvtps_ph(_mm256_loadu_ps(fbuf), kRound));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(hbuf + 8),
                     _mm256_cvtps_ph(_mm256_loadu_ps(fbuf + 8), kRound));
    std::memcpy(dst + i, hbuf, (n - i) * sizeof(std::uint16_t));
  }
}

// ---- reduction blocks (accumulators carried across fp16 tiles) -----------

void dot_f32_block(const float* a, const float* b, std::size_t n, __m256d s[4],
                   double& tail) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    s[0] = _mm256_fmadd_pd(cvt4_pd(a + i), cvt4_pd(b + i), s[0]);
    s[1] = _mm256_fmadd_pd(cvt4_pd(a + i + 4), cvt4_pd(b + i + 4), s[1]);
    s[2] = _mm256_fmadd_pd(cvt4_pd(a + i + 8), cvt4_pd(b + i + 8), s[2]);
    s[3] = _mm256_fmadd_pd(cvt4_pd(a + i + 12), cvt4_pd(b + i + 12), s[3]);
  }
  for (; i + 4 <= n; i += 4)
    s[0] = _mm256_fmadd_pd(cvt4_pd(a + i), cvt4_pd(b + i), s[0]);
  for (; i < n; ++i)
    tail += static_cast<double>(a[i]) * static_cast<double>(b[i]);
}

void dot_f64_block(const double* a, const double* b, std::size_t n,
                   __m256d s[4], double& tail) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    s[0] = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           s[0]);
    s[1] = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), s[1]);
    s[2] = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8),
                           _mm256_loadu_pd(b + i + 8), s[2]);
    s[3] = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12),
                           _mm256_loadu_pd(b + i + 12), s[3]);
  }
  for (; i + 4 <= n; i += 4)
    s[0] = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           s[0]);
  for (; i < n; ++i) tail += a[i] * b[i];
}

// One-pass {a·b, a·a, b·b} with 3x4-wide double accumulators (two unrolled
// sets so each FMA chain is one op per iteration).
void dot_triple_f32_block(const float* a, const float* b, std::size_t n,
                          __m256d t[6], double tail[3]) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d x0 = cvt4_pd(a + i), y0 = cvt4_pd(b + i);
    const __m256d x1 = cvt4_pd(a + i + 4), y1 = cvt4_pd(b + i + 4);
    t[0] = _mm256_fmadd_pd(x0, y0, t[0]);
    t[2] = _mm256_fmadd_pd(x0, x0, t[2]);
    t[4] = _mm256_fmadd_pd(y0, y0, t[4]);
    t[1] = _mm256_fmadd_pd(x1, y1, t[1]);
    t[3] = _mm256_fmadd_pd(x1, x1, t[3]);
    t[5] = _mm256_fmadd_pd(y1, y1, t[5]);
  }
  for (; i < n; ++i) {
    const double x = a[i], y = b[i];
    tail[0] += x * y;
    tail[1] += x * x;
    tail[2] += y * y;
  }
}

void dot_triple_f64_block(const double* a, const double* b, std::size_t n,
                          __m256d t[6], double tail[3]) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d x0 = _mm256_loadu_pd(a + i);
    const __m256d y0 = _mm256_loadu_pd(b + i);
    const __m256d x1 = _mm256_loadu_pd(a + i + 4);
    const __m256d y1 = _mm256_loadu_pd(b + i + 4);
    t[0] = _mm256_fmadd_pd(x0, y0, t[0]);
    t[2] = _mm256_fmadd_pd(x0, x0, t[2]);
    t[4] = _mm256_fmadd_pd(y0, y0, t[4]);
    t[1] = _mm256_fmadd_pd(x1, y1, t[1]);
    t[3] = _mm256_fmadd_pd(x1, x1, t[3]);
    t[5] = _mm256_fmadd_pd(y1, y1, t[5]);
  }
  for (; i < n; ++i) {
    const double x = a[i], y = b[i];
    tail[0] += x * y;
    tail[1] += x * x;
    tail[2] += y * y;
  }
}

double reduce4(const __m256d s[4], double tail) {
  return hsum(_mm256_add_pd(_mm256_add_pd(s[0], s[1]),
                            _mm256_add_pd(s[2], s[3]))) +
         tail;
}

void reduce_triple(const __m256d t[6], const double tail[3], double out[3]) {
  out[0] = hsum(_mm256_add_pd(t[0], t[1])) + tail[0];
  out[1] = hsum(_mm256_add_pd(t[2], t[3])) + tail[1];
  out[2] = hsum(_mm256_add_pd(t[4], t[5])) + tail[2];
}

// ---- elementwise blocks ---------------------------------------------------

void scaled_sum_f32_block(const float* a, double ca, const float* b, double cb,
                          float* out, std::size_t n) {
  const __m256d vca = _mm256_set1_pd(ca);
  const __m256d vcb = _mm256_set1_pd(cb);
  std::size_t i = 0;
  // Aliasing contract (tensor/kernels.h): out may equal a or b exactly. Each
  // 4-wide chunk is fully loaded before its store, and chunks are disjoint,
  // so the in-place combine is safe at any unroll depth.
  for (; i + 16 <= n; i += 16) {
    const __m256d r0 =
        _mm256_fmadd_pd(cvt4_pd(b + i), vcb, _mm256_mul_pd(cvt4_pd(a + i), vca));
    const __m256d r1 = _mm256_fmadd_pd(
        cvt4_pd(b + i + 4), vcb, _mm256_mul_pd(cvt4_pd(a + i + 4), vca));
    const __m256d r2 = _mm256_fmadd_pd(
        cvt4_pd(b + i + 8), vcb, _mm256_mul_pd(cvt4_pd(a + i + 8), vca));
    const __m256d r3 = _mm256_fmadd_pd(
        cvt4_pd(b + i + 12), vcb, _mm256_mul_pd(cvt4_pd(a + i + 12), vca));
    store4_ps(out + i, r0);
    store4_ps(out + i + 4, r1);
    store4_ps(out + i + 8, r2);
    store4_ps(out + i + 12, r3);
  }
  for (; i + 4 <= n; i += 4)
    store4_ps(out + i, _mm256_fmadd_pd(cvt4_pd(b + i), vcb,
                                       _mm256_mul_pd(cvt4_pd(a + i), vca)));
  for (; i < n; ++i)
    out[i] = static_cast<float>(ca * static_cast<double>(a[i]) +
                                cb * static_cast<double>(b[i]));
}

void axpy_f32_block(double alpha, const float* x, float* y, std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d r0 = _mm256_fmadd_pd(cvt4_pd(x + i), va, cvt4_pd(y + i));
    const __m256d r1 =
        _mm256_fmadd_pd(cvt4_pd(x + i + 4), va, cvt4_pd(y + i + 4));
    store4_ps(y + i, r0);
    store4_ps(y + i + 4, r1);
  }
  for (; i < n; ++i)
    y[i] = static_cast<float>(static_cast<double>(y[i]) +
                              alpha * static_cast<double>(x[i]));
}

void scale_f32_block(double alpha, float* x, std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d r0 = _mm256_mul_pd(cvt4_pd(x + i), va);
    const __m256d r1 = _mm256_mul_pd(cvt4_pd(x + i + 4), va);
    store4_ps(x + i, r0);
    store4_ps(x + i + 4, r1);
  }
  for (; i < n; ++i)
    x[i] = static_cast<float>(alpha * static_cast<double>(x[i]));
}

void add_f32_block(const float* x, float* y, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d r0 = _mm256_add_pd(cvt4_pd(x + i), cvt4_pd(y + i));
    const __m256d r1 = _mm256_add_pd(cvt4_pd(x + i + 4), cvt4_pd(y + i + 4));
    store4_ps(y + i, r0);
    store4_ps(y + i + 4, r1);
  }
  for (; i < n; ++i)
    y[i] = static_cast<float>(static_cast<double>(y[i]) +
                              static_cast<double>(x[i]));
}

// ---- typed kernel entry points -------------------------------------------

// fp32
double dot_f32(const std::byte* pa, const std::byte* pb, std::size_t n) {
  const auto* a = reinterpret_cast<const float*>(pa);
  const auto* b = reinterpret_cast<const float*>(pb);
  __m256d s[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                  _mm256_setzero_pd(), _mm256_setzero_pd()};
  double tail = 0.0;
  dot_f32_block(a, b, n, s, tail);
  return reduce4(s, tail);
}
double norm_squared_f32(const std::byte* pa, std::size_t n) {
  return dot_f32(pa, pa, n);
}
void dot_triple_f32(const std::byte* pa, const std::byte* pb, std::size_t n,
                    double out[3]) {
  const auto* a = reinterpret_cast<const float*>(pa);
  const auto* b = reinterpret_cast<const float*>(pb);
  __m256d t[6] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                  _mm256_setzero_pd(), _mm256_setzero_pd(),
                  _mm256_setzero_pd(), _mm256_setzero_pd()};
  double tail[3] = {0.0, 0.0, 0.0};
  dot_triple_f32_block(a, b, n, t, tail);
  reduce_triple(t, tail, out);
}
void axpy_f32(double alpha, const std::byte* x, std::byte* y, std::size_t n) {
  axpy_f32_block(alpha, reinterpret_cast<const float*>(x),
                 reinterpret_cast<float*>(y), n);
}
void scale_f32(double alpha, std::byte* x, std::size_t n) {
  scale_f32_block(alpha, reinterpret_cast<float*>(x), n);
}
void add_f32(const std::byte* x, std::byte* y, std::size_t n) {
  add_f32_block(reinterpret_cast<const float*>(x),
                reinterpret_cast<float*>(y), n);
}
void scaled_sum_f32(const std::byte* a, double ca, const std::byte* b,
                    double cb, std::byte* out, std::size_t n) {
  scaled_sum_f32_block(reinterpret_cast<const float*>(a), ca,
                       reinterpret_cast<const float*>(b), cb,
                       reinterpret_cast<float*>(out), n);
}

// fp64
double dot_f64(const std::byte* pa, const std::byte* pb, std::size_t n) {
  const auto* a = reinterpret_cast<const double*>(pa);
  const auto* b = reinterpret_cast<const double*>(pb);
  __m256d s[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                  _mm256_setzero_pd(), _mm256_setzero_pd()};
  double tail = 0.0;
  dot_f64_block(a, b, n, s, tail);
  return reduce4(s, tail);
}
double norm_squared_f64(const std::byte* pa, std::size_t n) {
  return dot_f64(pa, pa, n);
}
void dot_triple_f64(const std::byte* pa, const std::byte* pb, std::size_t n,
                    double out[3]) {
  const auto* a = reinterpret_cast<const double*>(pa);
  const auto* b = reinterpret_cast<const double*>(pb);
  __m256d t[6] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                  _mm256_setzero_pd(), _mm256_setzero_pd(),
                  _mm256_setzero_pd(), _mm256_setzero_pd()};
  double tail[3] = {0.0, 0.0, 0.0};
  dot_triple_f64_block(a, b, n, t, tail);
  reduce_triple(t, tail, out);
}
void axpy_f64(double alpha, const std::byte* px, std::byte* py,
              std::size_t n) {
  const auto* x = reinterpret_cast<const double*>(px);
  auto* y = reinterpret_cast<double*>(py);
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(y + i, _mm256_fmadd_pd(_mm256_loadu_pd(x + i), va,
                                            _mm256_loadu_pd(y + i)));
    _mm256_storeu_pd(y + i + 4,
                     _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4), va,
                                     _mm256_loadu_pd(y + i + 4)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}
void scale_f64(double alpha, std::byte* px, std::size_t n) {
  auto* x = reinterpret_cast<double*>(px);
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), va));
    _mm256_storeu_pd(x + i + 4,
                     _mm256_mul_pd(_mm256_loadu_pd(x + i + 4), va));
  }
  for (; i < n; ++i) x[i] *= alpha;
}
void add_f64(const std::byte* px, std::byte* py, std::size_t n) {
  const auto* x = reinterpret_cast<const double*>(px);
  auto* y = reinterpret_cast<double*>(py);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(x + i),
                                          _mm256_loadu_pd(y + i)));
    _mm256_storeu_pd(y + i + 4, _mm256_add_pd(_mm256_loadu_pd(x + i + 4),
                                              _mm256_loadu_pd(y + i + 4)));
  }
  for (; i < n; ++i) y[i] += x[i];
}
void scaled_sum_f64(const std::byte* pa, double ca, const std::byte* pb,
                    double cb, std::byte* pout, std::size_t n) {
  const auto* a = reinterpret_cast<const double*>(pa);
  const auto* b = reinterpret_cast<const double*>(pb);
  auto* out = reinterpret_cast<double*>(pout);
  const __m256d vca = _mm256_set1_pd(ca);
  const __m256d vcb = _mm256_set1_pd(cb);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // Loads of both operands precede the store, so out == a / out == b exact
    // aliasing (the in-place AdasumRVH combine) is safe per 8-element chunk.
    const __m256d r0 = _mm256_fmadd_pd(
        _mm256_loadu_pd(b + i), vcb,
        _mm256_mul_pd(_mm256_loadu_pd(a + i), vca));
    const __m256d r1 = _mm256_fmadd_pd(
        _mm256_loadu_pd(b + i + 4), vcb,
        _mm256_mul_pd(_mm256_loadu_pd(a + i + 4), vca));
    _mm256_storeu_pd(out + i, r0);
    _mm256_storeu_pd(out + i + 4, r1);
  }
  for (; i < n; ++i) out[i] = ca * a[i] + cb * b[i];
}

// fp16: stage through F16C-converted stack tiles, run the fp32 blocks, and
// (for mutating kernels) convert back with round-to-nearest-even — the same
// double -> float -> half rounding sequence as the scalar store<Half>() path.
double dot_f16(const std::byte* pa, const std::byte* pb, std::size_t n) {
  const auto* a = reinterpret_cast<const std::uint16_t*>(pa);
  const auto* b = reinterpret_cast<const std::uint16_t*>(pb);
  __m256d s[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                  _mm256_setzero_pd(), _mm256_setzero_pd()};
  double tail = 0.0;
  alignas(32) float ta[kTile], tb[kTile];
  for (std::size_t off = 0; off < n; off += kTile) {
    const std::size_t m = n - off < kTile ? n - off : kTile;
    h2f(a + off, ta, m);
    h2f(b + off, tb, m);
    dot_f32_block(ta, tb, m, s, tail);
  }
  return reduce4(s, tail);
}
double norm_squared_f16(const std::byte* pa, std::size_t n) {
  const auto* a = reinterpret_cast<const std::uint16_t*>(pa);
  __m256d s[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                  _mm256_setzero_pd(), _mm256_setzero_pd()};
  double tail = 0.0;
  alignas(32) float ta[kTile];
  for (std::size_t off = 0; off < n; off += kTile) {
    const std::size_t m = n - off < kTile ? n - off : kTile;
    h2f(a + off, ta, m);
    dot_f32_block(ta, ta, m, s, tail);
  }
  return reduce4(s, tail);
}
void dot_triple_f16(const std::byte* pa, const std::byte* pb, std::size_t n,
                    double out[3]) {
  const auto* a = reinterpret_cast<const std::uint16_t*>(pa);
  const auto* b = reinterpret_cast<const std::uint16_t*>(pb);
  __m256d t[6] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                  _mm256_setzero_pd(), _mm256_setzero_pd(),
                  _mm256_setzero_pd(), _mm256_setzero_pd()};
  double tail[3] = {0.0, 0.0, 0.0};
  alignas(32) float ta[kTile], tb[kTile];
  for (std::size_t off = 0; off < n; off += kTile) {
    const std::size_t m = n - off < kTile ? n - off : kTile;
    h2f(a + off, ta, m);
    h2f(b + off, tb, m);
    dot_triple_f32_block(ta, tb, m, t, tail);
  }
  reduce_triple(t, tail, out);
}
void axpy_f16(double alpha, const std::byte* px, std::byte* py,
              std::size_t n) {
  const auto* x = reinterpret_cast<const std::uint16_t*>(px);
  auto* y = reinterpret_cast<std::uint16_t*>(py);
  alignas(32) float tx[kTile], ty[kTile];
  for (std::size_t off = 0; off < n; off += kTile) {
    const std::size_t m = n - off < kTile ? n - off : kTile;
    h2f(x + off, tx, m);
    h2f(y + off, ty, m);
    axpy_f32_block(alpha, tx, ty, m);
    f2h(ty, y + off, m);
  }
}
void scale_f16(double alpha, std::byte* px, std::size_t n) {
  auto* x = reinterpret_cast<std::uint16_t*>(px);
  alignas(32) float tx[kTile];
  for (std::size_t off = 0; off < n; off += kTile) {
    const std::size_t m = n - off < kTile ? n - off : kTile;
    h2f(x + off, tx, m);
    scale_f32_block(alpha, tx, m);
    f2h(tx, x + off, m);
  }
}
void add_f16(const std::byte* px, std::byte* py, std::size_t n) {
  const auto* x = reinterpret_cast<const std::uint16_t*>(px);
  auto* y = reinterpret_cast<std::uint16_t*>(py);
  alignas(32) float tx[kTile], ty[kTile];
  for (std::size_t off = 0; off < n; off += kTile) {
    const std::size_t m = n - off < kTile ? n - off : kTile;
    h2f(x + off, tx, m);
    h2f(y + off, ty, m);
    add_f32_block(tx, ty, m);
    f2h(ty, y + off, m);
  }
}
void scaled_sum_f16(const std::byte* pa, double ca, const std::byte* pb,
                    double cb, std::byte* pout, std::size_t n) {
  const auto* a = reinterpret_cast<const std::uint16_t*>(pa);
  const auto* b = reinterpret_cast<const std::uint16_t*>(pb);
  auto* out = reinterpret_cast<std::uint16_t*>(pout);
  alignas(32) float ta[kTile], tb[kTile], to[kTile];
  for (std::size_t off = 0; off < n; off += kTile) {
    const std::size_t m = n - off < kTile ? n - off : kTile;
    // Both operand tiles are fully staged before the f2h store, so exact
    // aliasing of out with a or b is safe tile-by-tile.
    h2f(a + off, ta, m);
    h2f(b + off, tb, m);
    scaled_sum_f32_block(ta, ca, tb, cb, to, m);
    f2h(to, out + off, m);
  }
}

// ---- has_nonfinite: exponent-mask compare with per-block early exit ------

bool has_nonfinite_f32(const std::byte* pa, std::size_t n) {
  const auto* p = reinterpret_cast<const float*>(pa);
  const __m256i mask = _mm256_set1_epi32(0x7f800000);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i hit = _mm256_setzero_si256();
    for (std::size_t k = 0; k < 32; k += 8) {
      const __m256i v = _mm256_castps_si256(_mm256_loadu_ps(p + i + k));
      hit = _mm256_or_si256(hit,
                            _mm256_cmpeq_epi32(_mm256_and_si256(v, mask),
                                               mask));
    }
    if (!_mm256_testz_si256(hit, hit)) return true;
  }
  for (; i < n; ++i)
    if (!std::isfinite(p[i])) return true;
  return false;
}
bool has_nonfinite_f64(const std::byte* pa, std::size_t n) {
  const auto* p = reinterpret_cast<const double*>(pa);
  const __m256i mask = _mm256_set1_epi64x(0x7ff0000000000000LL);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m256i hit = _mm256_setzero_si256();
    for (std::size_t k = 0; k < 16; k += 4) {
      const __m256i v = _mm256_castpd_si256(_mm256_loadu_pd(p + i + k));
      hit = _mm256_or_si256(hit,
                            _mm256_cmpeq_epi64(_mm256_and_si256(v, mask),
                                               mask));
    }
    if (!_mm256_testz_si256(hit, hit)) return true;
  }
  for (; i < n; ++i)
    if (!std::isfinite(p[i])) return true;
  return false;
}
bool has_nonfinite_f16(const std::byte* pa, std::size_t n) {
  const auto* p = reinterpret_cast<const std::uint16_t*>(pa);
  const __m256i mask = _mm256_set1_epi16(0x7c00);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    __m256i hit = _mm256_setzero_si256();
    for (std::size_t k = 0; k < 64; k += 16) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(p + i + k));
      hit = _mm256_or_si256(hit,
                            _mm256_cmpeq_epi16(_mm256_and_si256(v, mask),
                                               mask));
    }
    if (!_mm256_testz_si256(hit, hit)) return true;
  }
  for (; i < n; ++i)
    if ((p[i] & 0x7c00u) == 0x7c00u) return true;
  return false;
}

// ---- blockwise compression casts (DESIGN.md §13) --------------------------
//
// Bit-parity with the scalar oracle is a hard contract (tests/
// compress_test.cpp compares payload bytes with memcmp). Two rules keep it:
// every float operation mirrors the scalar sequence exactly (same op, same
// order, same single-precision intermediates — intrinsics are never
// FMA-contracted), and block tails run as MASKED full vectors instead of
// scalar cleanup loops, so this -mfma TU contains no scalar mul-then-add
// sequence the compiler could fuse. Integer-only work (nibble packing, sign
// bits) reuses the scalar loops verbatim — integers cannot diverge.

inline __m256i lane_mask(std::size_t rem) {
  const __m256i idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  return _mm256_cmpgt_epi32(_mm256_set1_epi32(static_cast<int>(rem)), idx);
}

inline __m256 abs_ps(__m256 v) {
  return _mm256_andnot_ps(_mm256_set1_ps(-0.0f), v);
}

inline float hmax(__m256 v) {
  // max is exact, so the reduction order is free — unlike the sums below.
  __m128 m =
      _mm_max_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
  m = _mm_max_ps(m, _mm_movehl_ps(m, m));
  m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
  return _mm_cvtss_f32(m);
}

inline float block_max_abs8(const float* src, std::size_t s, std::size_t e) {
  __m256 acc = _mm256_setzero_ps();
  for (std::size_t i = s; i < e; i += 8) {
    const std::size_t rem = e - i;
    const __m256 x = rem >= 8 ? _mm256_loadu_ps(src + i)
                              : _mm256_maskload_ps(src + i, lane_mask(rem));
    acc = _mm256_max_ps(acc, abs_ps(x));  // masked lanes are 0, like scalar
  }
  return hmax(acc);
}

// Vector murmur3 finalizer matching sr_uniform() in the scalar TU: 32-bit
// lane arithmetic wraps identically, and the final int -> float conversion
// of a 24-bit value is exact in both.
inline __m256 sr_uniform8(std::uint32_t seed, std::uint32_t base) {
  const __m256i idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  __m256i h = _mm256_add_epi32(
      _mm256_set1_epi32(static_cast<int>(seed)),
      _mm256_mullo_epi32(
          _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(base)), idx),
          _mm256_set1_epi32(static_cast<int>(0x9E3779B9u))));
  h = _mm256_xor_si256(h, _mm256_srli_epi32(h, 16));
  h = _mm256_mullo_epi32(h, _mm256_set1_epi32(static_cast<int>(0x85EBCA6Bu)));
  h = _mm256_xor_si256(h, _mm256_srli_epi32(h, 13));
  h = _mm256_mullo_epi32(h, _mm256_set1_epi32(static_cast<int>(0xC2B2AE35u)));
  h = _mm256_xor_si256(h, _mm256_srli_epi32(h, 16));
  return _mm256_mul_ps(_mm256_cvtepi32_ps(_mm256_srli_epi32(h, 8)),
                       _mm256_set1_ps(1.0f / 16777216.0f));
}

// floor(v + u) or round-to-nearest-even, clamped after rounding — the same
// min(kMax, max(-kMax, r)) order as the scalar quantized_level. The
// _MM_FROUND_TO_NEAREST_INT mode is statically RTNE, matching scalar
// nearbyint under the default rounding mode (the only mode this process
// ever runs in).
template <int kMax>
inline __m256 quantized_level8(__m256 v, std::uint32_t seed,
                               std::uint32_t base, bool stochastic) {
  const __m256 r =
      stochastic
          ? _mm256_floor_ps(_mm256_add_ps(v, sr_uniform8(seed, base)))
          : _mm256_round_ps(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  return _mm256_min_ps(
      _mm256_set1_ps(static_cast<float>(kMax)),
      _mm256_max_ps(_mm256_set1_ps(static_cast<float>(-kMax)), r));
}

// Shared int8/int4 block walk: computes 8 integer levels at a time and hands
// them to `emit(i, rem, tmp)` with tmp[0..rem) holding the lane values.
template <int kMax, typename Emit>
void quantize_blocks_vec(const float* src, std::size_t n, std::size_t block,
                         std::uint32_t seed, bool stochastic, float* scales,
                         Emit&& emit) {
  std::size_t b = 0;
  for (std::size_t s = 0; s < n; s += block, ++b) {
    const std::size_t e = s + block < n ? s + block : n;
    const float m = block_max_abs8(src, s, e);
    const float scale = m / static_cast<float>(kMax);
    scales[b] = scale;
    alignas(32) std::int32_t tmp[8];
    if (m == 0.0f) {
      for (int k = 0; k < 8; ++k) tmp[k] = 0;
      for (std::size_t i = s; i < e; i += 8)
        emit(i, e - i >= 8 ? std::size_t{8} : e - i, tmp);
      continue;
    }
    const float inv = 1.0f / scale;
    const bool use_inv = std::isfinite(inv);
    for (std::size_t i = s; i < e; i += 8) {
      const std::size_t rem = e - i >= 8 ? std::size_t{8} : e - i;
      const __m256 x =
          rem == 8 ? _mm256_loadu_ps(src + i)
                   : _mm256_maskload_ps(src + i, lane_mask(rem));
      const __m256 v =
          use_inv ? _mm256_mul_ps(x, _mm256_set1_ps(inv))
                  : _mm256_mul_ps(_mm256_div_ps(x, _mm256_set1_ps(m)),
                                  _mm256_set1_ps(static_cast<float>(kMax)));
      const __m256 r = quantized_level8<kMax>(
          v, seed, static_cast<std::uint32_t>(i), stochastic);
      // Levels are exact small integers, so the truncating convert is exact.
      _mm256_store_si256(reinterpret_cast<__m256i*>(tmp),
                         _mm256_cvttps_epi32(r));
      emit(i, rem, tmp);
    }
  }
}

void ax_quantize_int8_blocks(const float* src, std::size_t n,
                             std::size_t block, std::uint32_t seed,
                             bool stochastic, float* scales, std::int8_t* q) {
  quantize_blocks_vec<127>(
      src, n, block, seed, stochastic, scales,
      [&](std::size_t i, std::size_t rem, const std::int32_t* tmp) {
        if (rem == 8) {
          // Saturating packs are exact: levels already sit in [-127, 127].
          const __m256i vi =
              _mm256_load_si256(reinterpret_cast<const __m256i*>(tmp));
          const __m128i p16 = _mm_packs_epi32(
              _mm256_castsi256_si128(vi), _mm256_extracti128_si256(vi, 1));
          _mm_storel_epi64(reinterpret_cast<__m128i*>(q + i),
                           _mm_packs_epi16(p16, p16));
        } else {
          for (std::size_t k = 0; k < rem; ++k)
            q[i + k] = static_cast<std::int8_t>(tmp[k]);
        }
      });
}

void ax_quantize_int4_blocks(const float* src, std::size_t n,
                             std::size_t block, std::uint32_t seed,
                             bool stochastic, float* scales,
                             std::uint8_t* packed) {
  quantize_blocks_vec<7>(
      src, n, block, seed, stochastic, scales,
      [&](std::size_t i, std::size_t rem, const std::int32_t* tmp) {
        // Same nibble layout as the scalar TU: even index low, odd high.
        for (std::size_t k = 0; k < rem; ++k) {
          const auto nib =
              static_cast<std::uint8_t>(static_cast<std::int8_t>(tmp[k])) &
              0x0Fu;
          const std::size_t gi = i + k;
          if ((gi & 1) == 0)
            packed[gi / 2] = static_cast<std::uint8_t>(nib);
          else
            packed[gi / 2] =
                static_cast<std::uint8_t>(packed[gi / 2] | (nib << 4));
        }
      });
}

void ax_dequantize_int8_blocks(const std::int8_t* q, std::size_t n,
                               std::size_t block, const float* scales,
                               float* dst) {
  std::size_t b = 0;
  for (std::size_t s = 0; s < n; s += block, ++b) {
    const std::size_t e = s + block < n ? s + block : n;
    const float scale = scales[b];
    const __m256 vs = _mm256_set1_ps(scale);
    std::size_t i = s;
    for (; i + 8 <= e; i += 8) {
      const __m128i b8 =
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q + i));
      _mm256_storeu_ps(
          dst + i,
          _mm256_mul_ps(_mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b8)), vs));
    }
    // Single multiply per element — nothing for FMA contraction to fuse.
    for (; i < e; ++i) dst[i] = static_cast<float>(q[i]) * scale;
  }
}

void ax_dequantize_int4_blocks(const std::uint8_t* packed, std::size_t n,
                               std::size_t block, const float* scales,
                               float* dst) {
  // Verbatim scalar loop: integer unpack plus one exact multiply.
  std::size_t b = 0;
  for (std::size_t s = 0; s < n; s += block, ++b) {
    const std::size_t e = s + block < n ? s + block : n;
    const float scale = scales[b];
    for (std::size_t i = s; i < e; ++i) {
      const int nib = (i & 1) ? (packed[i / 2] >> 4) : (packed[i / 2] & 0x0F);
      dst[i] = static_cast<float>((nib ^ 8) - 8) * scale;
    }
  }
}

void ax_quantize_sign_blocks(const float* src, std::size_t n,
                             std::size_t block, float* scales,
                             std::uint8_t* bits) {
  std::size_t b = 0;
  for (std::size_t s = 0; s < n; s += block, ++b) {
    const std::size_t e = s + block < n ? s + block : n;
    // 8-lane |x| accumulator; the horizontal add below IS the tree the
    // scalar oracle spells out, so the sums agree bit-for-bit.
    __m256 acc = _mm256_setzero_ps();
    for (std::size_t i = s; i < e; i += 8) {
      const std::size_t rem = e - i;
      const __m256 x = rem >= 8 ? _mm256_loadu_ps(src + i)
                                : _mm256_maskload_ps(src + i, lane_mask(rem));
      acc = _mm256_add_ps(acc, abs_ps(x));
    }
    const __m128 q4 = _mm_add_ps(_mm256_castps256_ps128(acc),
                                 _mm256_extractf128_ps(acc, 1));
    const __m128 q2 = _mm_add_ps(q4, _mm_movehl_ps(q4, q4));
    const float total =
        _mm_cvtss_f32(q2) + _mm_cvtss_f32(_mm_shuffle_ps(q2, q2, 1));
    scales[b] = total / static_cast<float>(e - s);
    for (std::size_t i = s; i < e; ++i) {
      if ((i & 7) == 0) bits[i / 8] = 0;
      if (!std::signbit(src[i]))
        bits[i / 8] = static_cast<std::uint8_t>(bits[i / 8] | (1u << (i & 7)));
    }
  }
}

void ax_dequantize_sign_blocks(const std::uint8_t* bits, std::size_t n,
                               std::size_t block, const float* scales,
                               float* dst) {
  // Verbatim scalar loop: selection and exact negation only.
  std::size_t b = 0;
  for (std::size_t s = 0; s < n; s += block, ++b) {
    const std::size_t e = s + block < n ? s + block : n;
    const float scale = scales[b];
    for (std::size_t i = s; i < e; ++i)
      dst[i] = ((bits[i / 8] >> (i & 7)) & 1) ? scale : -scale;
  }
}

// ---- fused dequantize-reduce (DESIGN.md §17) ------------------------------
//
// Bit contract: fused == the two-pass composition from THIS table, per
// element. The decoded value float(q)*scale is a single correctly-rounded
// multiply whether it comes from an 8-wide mul_ps lane or the scalar
// expression, so the decode staging below is free to vectorize only the
// uniform in-block groups. What is NOT free is the combine arithmetic:
//  * dequant_add's 8-wide body matches add_f32_block because the double add
//    + narrow is path-independent per lane; the sub-8 tail stages the
//    decoded floats and delegates to add_f32_block itself — composing the
//    decode multiply into the add expression lets -ffp-contract fuse them
//    into one single-precision FMA, which skips the product rounding.
//  * dequant_combine must reproduce scaled_sum_f32_block's exact element
//    partition (4-lane groups from the slice start, scalar tail after
//    floor4(n)) and its FMA shape fmadd(b, cb, mul(a, ca)) with the decoded
//    operand in the slot `deq_is_b` selects. The sub-4 tail delegates to
//    scaled_sum_f32_block itself so both tails are the same machine code
//    (FMA contraction of a spelled-out scalar expression is
//    toolchain-dependent inside this TU).

// Scale sideband cursor: scales[g / block] for a non-decreasing stream of
// global indices, without the per-element division. `block` is a runtime
// divisor, so the literal lookup costs a hardware DIV per element (or per
// straddle check) that dominated the fused loops' profile. The cursor pays
// one division at construction; after that advancing is a compare and an
// add. `next` — the global index where the current scale expires — doubles
// as the vector bodies' uniformity test: `gi + K <= next` means the whole
// K-wide group shares one scale and can take the splat path. Only the scale
// LOOKUP changes; the decode multiply sees the identical value, so the bit
// contract above is untouched.
struct FxScaleCursor {
  const float* scales;
  std::size_t block;
  std::size_t blk;
  std::size_t next;
  float scale;

  FxScaleCursor(const float* scales_, std::size_t block_, std::size_t start)
      : scales(scales_), block(block_), blk(start / block_) {
    next = (blk + 1) * block;
    scale = scales[blk];
  }
  float at(std::size_t g) {
    while (g >= next) {
      ++blk;
      next += block;
      scale = scales[blk];
    }
    return scale;
  }
};

inline float fx_deq_int8(const std::int8_t* q, std::size_t i, float scale) {
  return static_cast<float>(q[i]) * scale;
}
inline float fx_deq_int4(const std::uint8_t* packed, std::size_t i,
                         float scale) {
  const int nib = (i & 1) ? (packed[i / 2] >> 4) : (packed[i / 2] & 0x0F);
  return static_cast<float>((nib ^ 8) - 8) * scale;
}
inline float fx_deq_sign(const std::uint8_t* bits, std::size_t i, float scale) {
  return ((bits[i / 8] >> (i & 7)) & 1) ? scale : -scale;
}

// Decodes global elements [gi, gi+8) into dq, vectorizing the common case of
// a group that does not straddle a block boundary.
inline void fx_deq8_int8(const std::int8_t* q, FxScaleCursor& cur,
                         std::size_t gi, float* dq) {
  const float s = cur.at(gi);
  if (gi + 8 <= cur.next) {
    const __m128i b8 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q + gi));
    _mm256_storeu_ps(dq,
                     _mm256_mul_ps(_mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b8)),
                                   _mm256_set1_ps(s)));
  } else {
    for (int k = 0; k < 8; ++k)
      dq[k] = fx_deq_int8(q, gi + k, cur.at(gi + k));
  }
}
// Decodes 8 int4 elements starting at EVEN gi with one shared scale: the 8
// nibbles sit exactly in 4 bytes, so one 32-bit load + byte shuffles replace
// 8 scalar extract/store round-trips (narrow stores into dq followed by the
// caller's 256-bit reload defeat store-to-load forwarding). (nib ^ 8) - 8 in
// epi8 is the scalar sign-extension expression verbatim.
inline void fx_deq8_int4_uniform_even(const std::uint8_t* packed,
                                      std::size_t gi, float s, float* dq) {
  std::uint32_t raw;
  std::memcpy(&raw, packed + gi / 2, sizeof raw);
  const __m128i v = _mm_cvtsi32_si128(static_cast<std::int32_t>(raw));
  const __m128i m15 = _mm_set1_epi8(0x0F);
  const __m128i lo = _mm_and_si128(v, m15);
  const __m128i hi = _mm_and_si128(_mm_srli_epi16(v, 4), m15);
  __m128i nib = _mm_unpacklo_epi8(lo, hi);
  nib = _mm_sub_epi8(_mm_xor_si128(nib, _mm_set1_epi8(8)), _mm_set1_epi8(8));
  _mm256_storeu_ps(
      dq, _mm256_mul_ps(_mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(nib)),
                        _mm256_set1_ps(s)));
}

// Decodes 8 sign elements starting at gi with one shared scale: gathers the
// 8 bits into one byte (the second sideband byte exists whenever the shift
// is nonzero, because element gi+7 then lives in it), then selects scale vs
// -scale by sign-bit flip — IEEE negation IS the flip, so the lanes match
// the scalar ternary bit for bit, ±0 included.
inline void fx_deq8_sign_uniform(const std::uint8_t* bits, std::size_t gi,
                                 float s, float* dq) {
  const std::size_t sh = gi & 7;
  unsigned m = static_cast<unsigned>(bits[gi / 8]) >> sh;
  if (sh != 0) m |= static_cast<unsigned>(bits[gi / 8 + 1]) << (8 - sh);
  const __m128i lanes =
      _mm_setr_epi8(1, 2, 4, 8, 16, 32, 64, static_cast<char>(-128), 0, 0, 0,
                    0, 0, 0, 0, 0);
  const __m128i mb = _mm_set1_epi8(static_cast<char>(m));
  const __m128i on = _mm_cmpeq_epi8(_mm_and_si128(mb, lanes), lanes);
  const __m256 flip = _mm256_andnot_ps(
      _mm256_castsi256_ps(_mm256_cvtepi8_epi32(on)), _mm256_set1_ps(-0.0F));
  _mm256_storeu_ps(dq, _mm256_xor_ps(_mm256_set1_ps(s), flip));
}

inline void fx_deq4_int8(const std::int8_t* q, FxScaleCursor& cur,
                         std::size_t gi, float* dq) {
  const float s = cur.at(gi);
  if (gi + 4 <= cur.next) {
    std::int32_t raw;
    std::memcpy(&raw, q + gi, sizeof raw);
    const __m128i b4 = _mm_cvtsi32_si128(raw);
    _mm_storeu_ps(dq, _mm_mul_ps(_mm_cvtepi32_ps(_mm_cvtepi8_epi32(b4)),
                                 _mm_set1_ps(s)));
  } else {
    for (int k = 0; k < 4; ++k)
      dq[k] = fx_deq_int8(q, gi + k, cur.at(gi + k));
  }
}

// dst[i] += decoded[offset+i], double add + narrow per element. Deq8 stages
// 8 decoded floats; the remainder stages through dq and delegates to
// add_f32_block so the decode multiply can never contract into the add.
template <class Deq8, class Deq1>
void fused_add_f32(std::size_t offset, std::size_t n, float* dst, Deq8 deq8,
                   Deq1 deq1) {
  std::size_t i = 0;
  float dq[8];
  for (; i + 8 <= n; i += 8) {
    deq8(offset + i, dq);
    const __m256d r0 = _mm256_add_pd(cvt4_pd(dq), cvt4_pd(dst + i));
    const __m256d r1 = _mm256_add_pd(cvt4_pd(dq + 4), cvt4_pd(dst + i + 4));
    store4_ps(dst + i, r0);
    store4_ps(dst + i + 4, r1);
  }
  if (i < n) {
    const std::size_t rem = n - i;
    for (std::size_t k = 0; k < rem; ++k) dq[k] = deq1(offset + i + k);
    add_f32_block(dq, dst + i, rem);
  }
}

// out[i] = ca*a[i] + cb*b[i] with the decoded slice in the slot selected by
// deq_is_b — scaled_sum_f32_block's partition and FMA shape exactly.
template <class Deq4, class Deq1>
void fused_combine_f32(const float* other, double c_other, double c_deq,
                       bool deq_is_b, std::size_t offset, std::size_t n,
                       float* out, Deq4 deq4, Deq1 deq1) {
  const __m256d vco = _mm256_set1_pd(c_other);
  const __m256d vcd = _mm256_set1_pd(c_deq);
  std::size_t i = 0;
  float dq[4];
  for (; i + 4 <= n; i += 4) {
    deq4(offset + i, dq);
    const __m256d dv = cvt4_pd(dq);
    const __m256d ov = cvt4_pd(other + i);
    const __m256d r =
        deq_is_b ? _mm256_fmadd_pd(dv, vcd, _mm256_mul_pd(ov, vco))
                 : _mm256_fmadd_pd(ov, vco, _mm256_mul_pd(dv, vcd));
    store4_ps(out + i, r);
  }
  if (i < n) {
    const std::size_t rem = n - i;
    float at[3], bt[3], ot[3];
    for (std::size_t k = 0; k < rem; ++k) {
      const float d = deq1(offset + i + k);
      at[k] = deq_is_b ? other[i + k] : d;
      bt[k] = deq_is_b ? d : other[i + k];
    }
    scaled_sum_f32_block(at, deq_is_b ? c_other : c_deq, bt,
                         deq_is_b ? c_deq : c_other, ot, rem);
    for (std::size_t k = 0; k < rem; ++k) out[i + k] = ot[k];
  }
}

void ax_dequant_add_int8(const std::int8_t* q, const float* scales,
                         std::size_t offset, std::size_t n, std::size_t block,
                         float* dst) {
  FxScaleCursor cur(scales, block, offset);
  fused_add_f32(
      offset, n, dst,
      [&](std::size_t gi, float* dq) { fx_deq8_int8(q, cur, gi, dq); },
      [&](std::size_t gi) { return fx_deq_int8(q, gi, cur.at(gi)); });
}
void ax_dequant_add_int4(const std::uint8_t* packed, const float* scales,
                         std::size_t offset, std::size_t n, std::size_t block,
                         float* dst) {
  FxScaleCursor cur(scales, block, offset);
  fused_add_f32(
      offset, n, dst,
      [&](std::size_t gi, float* dq) {
        const float s = cur.at(gi);
        if (gi + 8 <= cur.next && (gi & 1) == 0) {
          fx_deq8_int4_uniform_even(packed, gi, s, dq);
        } else {
          for (int k = 0; k < 8; ++k) {
            const std::size_t g = gi + k;
            dq[k] = fx_deq_int4(packed, g, cur.at(g));
          }
        }
      },
      [&](std::size_t gi) { return fx_deq_int4(packed, gi, cur.at(gi)); });
}
void ax_dequant_add_sign(const std::uint8_t* bits, const float* scales,
                         std::size_t offset, std::size_t n, std::size_t block,
                         float* dst) {
  FxScaleCursor cur(scales, block, offset);
  fused_add_f32(
      offset, n, dst,
      [&](std::size_t gi, float* dq) {
        const float s = cur.at(gi);
        if (gi + 8 <= cur.next) {
          fx_deq8_sign_uniform(bits, gi, s, dq);
        } else {
          for (int k = 0; k < 8; ++k) {
            const std::size_t g = gi + k;
            dq[k] = fx_deq_sign(bits, g, cur.at(g));
          }
        }
      },
      [&](std::size_t gi) { return fx_deq_sign(bits, gi, cur.at(gi)); });
}

void ax_dequant_combine_int8(const float* other, double c_other, double c_deq,
                             bool deq_is_b, const std::int8_t* q,
                             const float* scales, std::size_t offset,
                             std::size_t n, std::size_t block, float* out) {
  FxScaleCursor cur(scales, block, offset);
  fused_combine_f32(
      other, c_other, c_deq, deq_is_b, offset, n, out,
      [&](std::size_t gi, float* dq) { fx_deq4_int8(q, cur, gi, dq); },
      [&](std::size_t gi) { return fx_deq_int8(q, gi, cur.at(gi)); });
}
void ax_dequant_combine_int4(const float* other, double c_other, double c_deq,
                             bool deq_is_b, const std::uint8_t* packed,
                             const float* scales, std::size_t offset,
                             std::size_t n, std::size_t block, float* out) {
  FxScaleCursor cur(scales, block, offset);
  fused_combine_f32(
      other, c_other, c_deq, deq_is_b, offset, n, out,
      [&](std::size_t gi, float* dq) {
        for (int k = 0; k < 4; ++k) {
          const std::size_t g = gi + k;
          dq[k] = fx_deq_int4(packed, g, cur.at(g));
        }
      },
      [&](std::size_t gi) { return fx_deq_int4(packed, gi, cur.at(gi)); });
}
void ax_dequant_combine_sign(const float* other, double c_other, double c_deq,
                             bool deq_is_b, const std::uint8_t* bits,
                             const float* scales, std::size_t offset,
                             std::size_t n, std::size_t block, float* out) {
  FxScaleCursor cur(scales, block, offset);
  fused_combine_f32(
      other, c_other, c_deq, deq_is_b, offset, n, out,
      [&](std::size_t gi, float* dq) {
        for (int k = 0; k < 4; ++k) {
          const std::size_t g = gi + k;
          dq[k] = fx_deq_sign(bits, g, cur.at(g));
        }
      },
      [&](std::size_t gi) { return fx_deq_sign(bits, gi, cur.at(gi)); });
}

// Non-temporal bulk copy. Below the threshold (or with a misaligned
// destination tail pattern) the cache-allocating memcpy wins — NT stores
// only pay off once the destination exceeds what the cache could usefully
// keep. 1 MiB is comfortably past L2 on everything this targets.
constexpr std::size_t kStreamCopyMin = 1u << 20;

void stream_copy_avx2(const std::byte* src, std::byte* dst,
                      std::size_t bytes) {
  if (bytes < kStreamCopyMin) {
    if (bytes != 0) std::memcpy(dst, src, bytes);
    return;
  }
  // Head: copy up to the destination's next 32-byte boundary so the NT
  // stores are aligned (movntdq requires it).
  const std::size_t mis =
      reinterpret_cast<std::uintptr_t>(dst) & std::uintptr_t{31};
  if (mis != 0) {
    const std::size_t head = 32 - mis;
    std::memcpy(dst, src, head);
    src += head;
    dst += head;
    bytes -= head;
  }
  std::size_t i = 0;
  for (; i + 128 <= bytes; i += 128) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 64));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 96));
    _mm256_stream_si256(reinterpret_cast<__m256i*>(dst + i), a);
    _mm256_stream_si256(reinterpret_cast<__m256i*>(dst + i + 32), b);
    _mm256_stream_si256(reinterpret_cast<__m256i*>(dst + i + 64), c);
    _mm256_stream_si256(reinterpret_cast<__m256i*>(dst + i + 96), d);
  }
  if (i < bytes) std::memcpy(dst + i, src + i, bytes - i);
  // NT stores are weakly ordered: drain the write-combining buffers before
  // returning so the caller's subsequent release-store publication (the shm
  // slot epoch) actually covers these bytes.
  _mm_sfence();
}

}  // namespace

const KernelTable& avx2_table() {
  static constexpr KernelTable table = {
      "avx2",
      {dot_f16, dot_f32, dot_f64},
      {norm_squared_f16, norm_squared_f32, norm_squared_f64},
      {dot_triple_f16, dot_triple_f32, dot_triple_f64},
      {axpy_f16, axpy_f32, axpy_f64},
      {scale_f16, scale_f32, scale_f64},
      {add_f16, add_f32, add_f64},
      {scaled_sum_f16, scaled_sum_f32, scaled_sum_f64},
      {has_nonfinite_f16, has_nonfinite_f32, has_nonfinite_f64},
      h2f,
      f2h,
      stream_copy_avx2,
      ax_quantize_int8_blocks,
      ax_dequantize_int8_blocks,
      ax_quantize_int4_blocks,
      ax_dequantize_int4_blocks,
      ax_quantize_sign_blocks,
      ax_dequantize_sign_blocks,
      ax_dequant_add_int8,
      ax_dequant_add_int4,
      ax_dequant_add_sign,
      ax_dequant_combine_int8,
      ax_dequant_combine_int4,
      ax_dequant_combine_sign,
  };
  return table;
}

}  // namespace adasum::simd

#endif  // ADASUM_SIMD_HAVE_AVX2
