#include "tensor/simd/simd.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace adasum::simd {
namespace {

// Resolution runs once (function-local static in active_level); it must not
// allocate — chaos_test's zero-allocation gate covers binaries that dispatch.
Level resolve_level() {
  const bool available = built_with_avx2() && cpu_has_avx2();
  const char* env = std::getenv("ADASUM_SIMD");
  if (env != nullptr && *env != '\0') {
    if (std::strcmp(env, "scalar") == 0) return Level::kScalar;
    if (std::strcmp(env, "avx2") == 0) {
      if (available) return Level::kAvx2;
      std::fprintf(stderr,
                   "adasum: ADASUM_SIMD=avx2 requested but %s; "
                   "falling back to scalar kernels\n",
                   built_with_avx2() ? "the CPU lacks AVX2/FMA/F16C"
                                     : "the build has no AVX2 kernels");
      return Level::kScalar;
    }
    if (std::strcmp(env, "auto") != 0) {
      std::fprintf(stderr,
                   "adasum: unknown ADASUM_SIMD value '%s' "
                   "(expected scalar|avx2|auto); using auto\n",
                   env);
    }
  }
  return available ? Level::kAvx2 : Level::kScalar;
}

#if defined(ADASUM_SIMD_HAVE_AVX2)
// True when ADASUM_SIMD=avx2 was requested explicitly (as opposed to auto
// selection): the raw AVX2 table is handed out unmodified then, so the
// per-entry tuning below never hides a vector body from someone asking for
// it by name.
bool env_forced_avx2() {
  static const bool forced = [] {
    const char* env = std::getenv("ADASUM_SIMD");
    return env != nullptr && std::strcmp(env, "avx2") == 0;
  }();
  return forced;
}

// Measured per-(kernel, dtype) picks (BENCH_kernels.json): the AVX2 bodies
// for these entries lose to the scalar loops — `add` has one add per element
// against a widen/narrow shuffle chain, and f64 `scaled_sum`'s FMA gains
// drown in the same port pressure — so auto dispatch demotes exactly those
// entries to the scalar pointers. Numerics: add is bit-identical across TUs
// (double add + single narrow either way) and scaled_sum f64 stays within
// the documented ulp envelope, with every caller routed through the same
// table so self-consistency holds. table_for() keeps returning the raw
// per-TU tables — the parity tests compare pure TUs, not this blend.
const KernelTable& tuned_avx2_table() {
  static const KernelTable table = [] {
    KernelTable t = avx2_table();
    const KernelTable& s = scalar_table();
    t.add[kF32] = s.add[kF32];
    t.add[kF64] = s.add[kF64];
    t.scaled_sum[kF64] = s.scaled_sum[kF64];
    return t;
  }();
  return table;
}
#endif

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kAvx2: return "avx2";
  }
  return "?";
}

bool cpu_has_avx2() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
         __builtin_cpu_supports("f16c");
#else
  return false;
#endif
}

bool built_with_avx2() {
#if defined(ADASUM_SIMD_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

Level active_level() {
  static const Level level = resolve_level();
  return level;
}

const KernelTable& active_table() {
  const KernelTable* table = table_for(active_level());
  if (table == nullptr) return scalar_table();
#if defined(ADASUM_SIMD_HAVE_AVX2)
  if (table == &avx2_table() && !env_forced_avx2()) return tuned_avx2_table();
#endif
  return *table;
}

const KernelTable* table_for(Level level) {
  switch (level) {
    case Level::kScalar:
      return &scalar_table();
    case Level::kAvx2:
#if defined(ADASUM_SIMD_HAVE_AVX2)
      if (cpu_has_avx2()) return &avx2_table();
#endif
      return nullptr;
  }
  return nullptr;
}

}  // namespace adasum::simd
