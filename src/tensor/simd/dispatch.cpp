#include "tensor/simd/simd.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace adasum::simd {
namespace {

// Resolution runs once (function-local static in active_level); it must not
// allocate — chaos_test's zero-allocation gate covers binaries that dispatch.
Level resolve_level() {
  const bool available = built_with_avx2() && cpu_has_avx2();
  const char* env = std::getenv("ADASUM_SIMD");
  if (env != nullptr && *env != '\0') {
    if (std::strcmp(env, "scalar") == 0) return Level::kScalar;
    if (std::strcmp(env, "avx2") == 0) {
      if (available) return Level::kAvx2;
      std::fprintf(stderr,
                   "adasum: ADASUM_SIMD=avx2 requested but %s; "
                   "falling back to scalar kernels\n",
                   built_with_avx2() ? "the CPU lacks AVX2/FMA/F16C"
                                     : "the build has no AVX2 kernels");
      return Level::kScalar;
    }
    if (std::strcmp(env, "auto") != 0) {
      std::fprintf(stderr,
                   "adasum: unknown ADASUM_SIMD value '%s' "
                   "(expected scalar|avx2|auto); using auto\n",
                   env);
    }
  }
  return available ? Level::kAvx2 : Level::kScalar;
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kAvx2: return "avx2";
  }
  return "?";
}

bool cpu_has_avx2() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
         __builtin_cpu_supports("f16c");
#else
  return false;
#endif
}

bool built_with_avx2() {
#if defined(ADASUM_SIMD_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

Level active_level() {
  static const Level level = resolve_level();
  return level;
}

const KernelTable& active_table() {
  const KernelTable* table = table_for(active_level());
  return table != nullptr ? *table : scalar_table();
}

const KernelTable* table_for(Level level) {
  switch (level) {
    case Level::kScalar:
      return &scalar_table();
    case Level::kAvx2:
#if defined(ADASUM_SIMD_HAVE_AVX2)
      if (cpu_has_avx2()) return &avx2_table();
#endif
      return nullptr;
  }
  return nullptr;
}

}  // namespace adasum::simd
