#include "tensor/tensor.h"

#include <sstream>

namespace adasum {
namespace {

std::size_t shape_size(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape, DType dtype)
    : shape_(std::move(shape)),
      size_(shape_size(shape_)),
      dtype_(dtype),
      storage_(size_ * dtype_size(dtype), std::byte{0}) {}

Tensor Tensor::full(std::vector<std::size_t> shape, double value, DType dtype) {
  Tensor t(std::move(shape), dtype);
  t.fill(value);
  return t;
}

Tensor Tensor::from_vector(const std::vector<double>& values, DType dtype) {
  Tensor t({values.size()}, dtype);
  for (std::size_t i = 0; i < values.size(); ++i) t.set(i, values[i]);
  return t;
}

double Tensor::at(std::size_t i) const {
  ADASUM_CHECK_LT(i, size_);
  return dispatch_dtype(dtype_, [&]<typename T>() -> double {
    return static_cast<double>(
        reinterpret_cast<const T*>(storage_.data())[i]);
  });
}

void Tensor::set(std::size_t i, double value) {
  ADASUM_CHECK_LT(i, size_);
  dispatch_dtype(dtype_, [&]<typename T>() {
    reinterpret_cast<T*>(storage_.data())[i] = static_cast<T>(value);
  });
}

Tensor Tensor::reshaped(std::vector<std::size_t> shape) const {
  ADASUM_CHECK_EQ(shape_size(shape), size_);
  Tensor t = *this;
  t.shape_ = std::move(shape);
  return t;
}

Tensor Tensor::cast(DType dtype) const {
  if (dtype == dtype_) {
    return *this;  // storage copies with the object
  }
  Tensor out(shape_, dtype);
  dispatch_dtype(dtype_, [&]<typename Src>() {
    const Src* src = reinterpret_cast<const Src*>(storage_.data());
    dispatch_dtype(dtype, [&]<typename Dst>() {
      Dst* dst = reinterpret_cast<Dst*>(out.storage_.data());
      for (std::size_t i = 0; i < size_; ++i)
        dst[i] = static_cast<Dst>(static_cast<double>(src[i]));
    });
  });
  return out;
}

void Tensor::fill(double value) {
  dispatch_dtype(dtype_, [&]<typename T>() {
    T* p = reinterpret_cast<T*>(storage_.data());
    const T v = static_cast<T>(value);
    for (std::size_t i = 0; i < size_; ++i) p[i] = v;
  });
}

std::string Tensor::debug_string() const {
  std::ostringstream os;
  os << "Tensor(" << dtype_name(dtype_) << ", [";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape_[i];
  }
  os << "]";
  if (size_ <= 8) {
    os << ", {";
    for (std::size_t i = 0; i < size_; ++i) {
      if (i > 0) os << ", ";
      os << at(i);
    }
    os << "}";
  }
  os << ")";
  return os.str();
}

}  // namespace adasum
