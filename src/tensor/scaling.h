// Dynamic scaling for fp16 payloads (paper §4.4.1).
//
// When gradients travel in fp16, their values must be kept inside the
// binary16 dynamic range. The standard technique (Micikevicius et al.,
// "Mixed Precision Training") multiplies tensors by a running scale before
// the cast and divides after; when a cast or reduction overflows (producing
// inf/nan), the scale is halved and the step retried/skipped, and after a
// window of clean steps the scale grows back. The paper applies this to the
// tensors Adasum introduces — the effective_gradient of Figure 3.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace adasum {

class DynamicScaler {
 public:
  struct Options {
    double initial_scale = 1024.0;
    double growth_factor = 2.0;
    double backoff_factor = 0.5;
    // Consecutive finite steps before the scale grows.
    int growth_interval = 200;
    double max_scale = 65536.0;
    double min_scale = 1.0;
  };

  DynamicScaler() : DynamicScaler(Options{}) {}
  explicit DynamicScaler(const Options& options);

  double scale() const { return scale_; }

  // Record the outcome of a step. Returns true if the step's values were
  // finite and may be applied; false means the caller must skip/retry the
  // step (the scale has been backed off).
  bool update(bool overflowed);

  int num_backoffs() const { return num_backoffs_; }
  int num_growths() const { return num_growths_; }

 private:
  Options options_;
  double scale_;
  int good_steps_ = 0;
  int num_backoffs_ = 0;
  int num_growths_ = 0;
};

// Returns a scaled fp16 copy of `t` (t * scale, cast to fp16).
Tensor cast_to_fp16_scaled(const Tensor& t, double scale);

// Returns an fp32 copy of fp16 tensor `t` divided by `scale`.
Tensor cast_from_fp16_scaled(const Tensor& t, double scale);

// True if the tensor contains any inf/nan element.
bool tensor_overflowed(const Tensor& t);

}  // namespace adasum
