// Element-type system for tensors and communication payloads.
//
// The Adasum kernels run over fp16, fp32 and fp64 payloads (paper §4.4.2).
// Dot products and norms accumulate in double regardless of the payload
// dtype (paper §4.4.1); the dtype here only describes storage.
#pragma once

#include <cstddef>
#include <string>

#include "base/check.h"
#include "base/half.h"

namespace adasum {

enum class DType { kFloat16, kFloat32, kFloat64 };

constexpr std::size_t dtype_size(DType dtype) {
  switch (dtype) {
    case DType::kFloat16: return 2;
    case DType::kFloat32: return 4;
    case DType::kFloat64: return 8;
  }
  return 0;  // unreachable; keeps gcc -Wreturn-type happy
}

inline std::string dtype_name(DType dtype) {
  switch (dtype) {
    case DType::kFloat16: return "float16";
    case DType::kFloat32: return "float32";
    case DType::kFloat64: return "float64";
  }
  return "?";
}

template <typename T>
struct DTypeOf;
template <>
struct DTypeOf<Half> {
  static constexpr DType value = DType::kFloat16;
};
template <>
struct DTypeOf<float> {
  static constexpr DType value = DType::kFloat32;
};
template <>
struct DTypeOf<double> {
  static constexpr DType value = DType::kFloat64;
};

template <typename T>
inline constexpr DType dtype_of = DTypeOf<T>::value;

// Invoke a callable templated on the element type matching `dtype`:
//   dispatch_dtype(dtype, [&]<typename T>() { ... });
template <typename F>
decltype(auto) dispatch_dtype(DType dtype, F&& f) {
  switch (dtype) {
    case DType::kFloat16: return f.template operator()<Half>();
    case DType::kFloat32: return f.template operator()<float>();
    case DType::kFloat64: return f.template operator()<double>();
  }
  throw InvalidArgument("unknown dtype");
}

}  // namespace adasum
