// Tensor fusion with layer-boundary bookkeeping (paper §4.4.3).
//
// Horovod batches small per-layer tensors into one fused buffer so the
// transport is called once. Plain sum-allreduce can treat the fused buffer
// as one vector, but Adasum must NOT: the operator is applied per layer
// (§3.6), so the fused buffer carries the boundary table telling the
// reduction where each layer's slice begins and ends. The boundary table is
// identical on all ranks (same model, same fusion order), so it is kept
// locally and never communicated — exactly the paper's "this bookkeeping is
// stored locally and does not increase communication overheads".
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace adasum {

// One layer's slice inside a fused flat buffer. Offsets/counts are in
// elements of the fused dtype.
struct TensorSlice {
  std::string name;
  std::size_t offset = 0;
  std::size_t count = 0;
};

// A flat buffer plus the boundary table describing the tensors packed in it.
struct FusedTensor {
  Tensor flat;                       // 1-D, dtype of the inputs
  std::vector<TensorSlice> slices;   // in packing order, contiguous
};

// Groups tensor indices so that each group's payload stays under
// `threshold_bytes` (the HOROVOD_FUSION_THRESHOLD analogue). A tensor larger
// than the threshold forms its own group. Order is preserved.
std::vector<std::vector<std::size_t>> make_fusion_groups(
    const std::vector<const Tensor*>& tensors, std::size_t threshold_bytes);

// Packs the given tensors (all the same dtype) into one fused buffer.
// Names in the boundary table are "t<i>" unless `names` is provided.
FusedTensor fuse(const std::vector<const Tensor*>& tensors,
                 const std::vector<std::string>* names = nullptr);

// Copies slices of `fused` back into the destination tensors, which must
// match the boundary table sizes in order.
void unfuse(const FusedTensor& fused, const std::vector<Tensor*>& tensors);

// Reusable fusion staging. fuse() allocates a fresh flat buffer and rebuilds
// the boundary table (N string constructions) every step; a training loop
// packs the same layer layout thousands of times. FusionBuffer keeps the
// backing Tensor and the table across pack() calls: when the total
// size/dtype repeat the buffer is reused in place, and when the layout
// (per-tensor sizes and names) is unchanged the table rebuild is skipped
// entirely, so a warm pack() performs only the payload memcpys.
class FusionBuffer {
 public:
  struct Stats {
    std::uint64_t packs = 0;          // total pack() calls
    std::uint64_t buffer_reuses = 0;  // packs that kept the backing tensor
    std::uint64_t table_reuses = 0;   // packs that kept the boundary table
  };

  // Packs tensors (all one dtype) into the internal fused buffer, reusing
  // storage where the layout allows, and returns it. The reference stays
  // valid until the next pack().
  FusedTensor& pack(const std::vector<const Tensor*>& tensors,
                    const std::vector<std::string>* names = nullptr);

  // Copies the fused slices back out (same contract as unfuse()).
  void unpack(const std::vector<Tensor*>& tensors) const;

  FusedTensor& fused() { return fused_; }
  const FusedTensor& fused() const { return fused_; }
  const Stats& stats() const { return stats_; }

 private:
  FusedTensor fused_;
  Stats stats_;
};

}  // namespace adasum
