// Synthetic datasets standing in for the paper's workloads (DESIGN.md §1).
#pragma once

#include <cstdint>

#include "base/rng.h"
#include "data/dataset.h"

namespace adasum::data {

// Classification images: each class has a smooth prototype image (a random
// low-frequency pattern, bilinearly upsampled from a coarse grid) and
// examples are prototype + Gaussian pixel noise. With enough noise the task
// requires real feature learning (a linear probe does not saturate), which
// is what makes large-batch overshoot observable — the MNIST/ImageNet
// substitute for §5.1/§5.4.
class ClusterImageDataset : public Dataset {
 public:
  struct Options {
    std::size_t num_examples = 4096;
    std::size_t num_classes = 10;
    std::size_t channels = 1;
    std::size_t height = 28;
    std::size_t width = 28;
    double noise = 1.0;          // pixel noise stddev
    double prototype_scale = 1.0;
    std::uint64_t seed = 1;      // determines the class prototypes (the task)
    // Seed for the per-example noise stream. Train/eval splits of the SAME
    // task share `seed` and differ in `example_seed`. 0 = use `seed`.
    std::uint64_t example_seed = 0;
  };

  explicit ClusterImageDataset(const Options& options);

  std::size_t size() const override { return options_.num_examples; }
  std::vector<std::size_t> example_shape() const override {
    return {options_.channels, options_.height, options_.width};
  }
  std::size_t labels_per_example() const override { return 1; }
  void fill_example(std::size_t index, std::span<float> input,
                    std::span<int> labels) const override;

  std::size_t num_classes() const { return options_.num_classes; }

 private:
  Options options_;
  std::vector<float> prototypes_;  // (classes, c*h*w)
};

// Token sequences from a noisy order-2 Markov source: the next token is a
// deterministic function T[a][b] of the previous two with probability
// 1-noise, uniform otherwise. A model that learns the transition table
// reaches accuracy ≈ (1-noise) + noise/vocab; the pretraining-loss substitute
// for the BERT corpora of §5.3. Labels are next-token ids per position (the
// first `burn_in` positions are ignored).
class MarkovTextDataset : public Dataset {
 public:
  struct Options {
    std::size_t num_examples = 4096;
    std::size_t vocab = 32;
    std::size_t seq_len = 16;  // model input length
    double noise = 0.1;
    std::size_t burn_in = 2;   // positions without enough context to predict
    std::uint64_t seed = 2;    // determines the transition table (the task)
    // Seed for the per-example token stream; train/eval splits of the same
    // task share `seed` and differ here. 0 = use `seed`.
    std::uint64_t example_seed = 0;
  };

  explicit MarkovTextDataset(const Options& options);

  std::size_t size() const override { return options_.num_examples; }
  std::vector<std::size_t> example_shape() const override {
    return {options_.seq_len};
  }
  std::size_t labels_per_example() const override { return options_.seq_len; }
  void fill_example(std::size_t index, std::span<float> input,
                    std::span<int> labels) const override;

  std::size_t vocab() const { return options_.vocab; }
  // Best achievable next-token accuracy given the noise level.
  double bayes_accuracy() const {
    return (1.0 - options_.noise) +
           options_.noise / static_cast<double>(options_.vocab);
  }

 private:
  Options options_;
  std::vector<std::uint16_t> transitions_;  // (vocab*vocab)
};

}  // namespace adasum::data
