// Dataset abstraction and the sharding data loader.
//
// Datasets synthesize examples deterministically from (seed, index) — no
// storage, fully reproducible, and every rank can materialize any shard.
// This is the substitution for MNIST/ImageNet/Wikipedia (DESIGN.md §1): the
// distributed-training phenomena under study depend on gradient statistics,
// not on the provenance of the pixels/tokens.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace adasum::data {

struct Batch {
  Tensor inputs;            // (B, ...) fp32
  std::vector<int> labels;  // B * labels_per_example(), -1 = ignore
};

class Dataset {
 public:
  virtual ~Dataset() = default;

  virtual std::size_t size() const = 0;
  // Shape of one example (without the batch dimension).
  virtual std::vector<std::size_t> example_shape() const = 0;
  // 1 for classification; sequence length for token prediction.
  virtual std::size_t labels_per_example() const = 0;
  // Materialize example `index` into `input` (example_shape elements) and
  // `labels` (labels_per_example entries).
  virtual void fill_example(std::size_t index, std::span<float> input,
                            std::span<int> labels) const = 0;
};

// Assemble a batch from explicit indices.
Batch make_batch(const Dataset& dataset, std::span<const std::size_t> indices);

// Epoch-based loader that shards a dataset across `world_size` ranks.
// All ranks construct the loader with the same seed, producing the same
// global shuffle; rank r takes batches where (batch_index % world) == r's
// strided share — i.e. the global batch of a step is the concatenation of
// all ranks' microbatches, exactly the data-parallel layout the paper
// assumes ("the user is responsible for partitioning data across nodes").
class DataLoader {
 public:
  DataLoader(const Dataset& dataset, std::size_t batch_size, int rank,
             int world_size, std::uint64_t seed, bool shuffle = true);

  // Microbatches this rank owns per epoch.
  std::size_t batches_per_epoch() const { return batches_per_epoch_; }

  // The `step`-th microbatch of epoch `epoch` for this rank. Deterministic:
  // (epoch, step) fully identifies the examples.
  Batch batch(std::size_t epoch, std::size_t step) const;

 private:
  const Dataset& dataset_;
  std::size_t batch_size_;
  int rank_, world_size_;
  std::uint64_t seed_;
  bool shuffle_;
  std::size_t batches_per_epoch_;
};

}  // namespace adasum::data
