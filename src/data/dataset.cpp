#include "data/dataset.h"

#include <numeric>

#include "base/check.h"
#include "base/rng.h"

namespace adasum::data {

Batch make_batch(const Dataset& dataset,
                 std::span<const std::size_t> indices) {
  ADASUM_CHECK(!indices.empty());
  const auto shape = dataset.example_shape();
  std::size_t example_elems = 1;
  for (std::size_t d : shape) example_elems *= d;
  const std::size_t lpe = dataset.labels_per_example();

  std::vector<std::size_t> batch_shape{indices.size()};
  batch_shape.insert(batch_shape.end(), shape.begin(), shape.end());
  Batch batch;
  batch.inputs = Tensor(std::move(batch_shape));
  batch.labels.assign(indices.size() * lpe, -1);
  auto in = batch.inputs.span<float>();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    ADASUM_CHECK_LT(indices[i], dataset.size());
    dataset.fill_example(
        indices[i], in.subspan(i * example_elems, example_elems),
        std::span<int>(batch.labels).subspan(i * lpe, lpe));
  }
  return batch;
}

DataLoader::DataLoader(const Dataset& dataset, std::size_t batch_size,
                       int rank, int world_size, std::uint64_t seed,
                       bool shuffle)
    : dataset_(dataset),
      batch_size_(batch_size),
      rank_(rank),
      world_size_(world_size),
      seed_(seed),
      shuffle_(shuffle) {
  ADASUM_CHECK_GT(batch_size, 0u);
  ADASUM_CHECK_GE(rank, 0);
  ADASUM_CHECK_LT(rank, world_size);
  const std::size_t global_batches =
      dataset.size() / (batch_size * static_cast<std::size_t>(world_size));
  ADASUM_CHECK_MSG(global_batches > 0,
                   "dataset smaller than one global batch");
  batches_per_epoch_ = global_batches;
}

Batch DataLoader::batch(std::size_t epoch, std::size_t step) const {
  ADASUM_CHECK_LT(step, batches_per_epoch_);
  // The same permutation is derived on every rank from (seed, epoch).
  std::vector<std::size_t> order(dataset_.size());
  std::iota(order.begin(), order.end(), 0);
  if (shuffle_) {
    Rng rng = Rng(seed_).fork(epoch);
    rng.shuffle(order);
  }
  // Global step `step` consumes world_size*batch_size consecutive examples;
  // rank r takes the r-th slice.
  const std::size_t global_offset =
      step * batch_size_ * static_cast<std::size_t>(world_size_) +
      static_cast<std::size_t>(rank_) * batch_size_;
  return make_batch(dataset_, std::span<const std::size_t>(order).subspan(
                                  global_offset, batch_size_));
}

}  // namespace adasum::data
