#include "data/synthetic.h"

#include <cmath>

#include "base/check.h"

namespace adasum::data {
namespace {

// Bilinear upsample of a coarse grid (gh x gw) to (h x w).
void upsample(const std::vector<float>& grid, std::size_t gh, std::size_t gw,
              float* out, std::size_t h, std::size_t w) {
  for (std::size_t y = 0; y < h; ++y) {
    const double fy = static_cast<double>(y) / static_cast<double>(h - 1) *
                      static_cast<double>(gh - 1);
    const std::size_t y0 = static_cast<std::size_t>(fy);
    const std::size_t y1 = std::min(y0 + 1, gh - 1);
    const double wy = fy - static_cast<double>(y0);
    for (std::size_t x = 0; x < w; ++x) {
      const double fx = static_cast<double>(x) / static_cast<double>(w - 1) *
                        static_cast<double>(gw - 1);
      const std::size_t x0 = static_cast<std::size_t>(fx);
      const std::size_t x1 = std::min(x0 + 1, gw - 1);
      const double wx = fx - static_cast<double>(x0);
      const double v =
          (1 - wy) * ((1 - wx) * grid[y0 * gw + x0] + wx * grid[y0 * gw + x1]) +
          wy * ((1 - wx) * grid[y1 * gw + x0] + wx * grid[y1 * gw + x1]);
      out[y * w + x] = static_cast<float>(v);
    }
  }
}

}  // namespace

ClusterImageDataset::ClusterImageDataset(const Options& options)
    : options_(options) {
  ADASUM_CHECK_GE(options_.num_classes, 2u);
  ADASUM_CHECK_GE(options_.height, 4u);
  ADASUM_CHECK_GE(options_.width, 4u);
  const std::size_t plane = options_.height * options_.width;
  const std::size_t per_class = options_.channels * plane;
  prototypes_.resize(options_.num_classes * per_class);
  Rng rng = Rng(options_.seed).fork(0xC1A55);
  const std::size_t gh = 4, gw = 4;
  std::vector<float> grid(gh * gw);
  for (std::size_t cls = 0; cls < options_.num_classes; ++cls) {
    Rng crng = rng.fork(cls);
    for (std::size_t ch = 0; ch < options_.channels; ++ch) {
      for (auto& g : grid)
        g = static_cast<float>(crng.normal(0.0, options_.prototype_scale));
      upsample(grid, gh, gw,
               prototypes_.data() + cls * per_class + ch * plane,
               options_.height, options_.width);
    }
  }
}

void ClusterImageDataset::fill_example(std::size_t index,
                                       std::span<float> input,
                                       std::span<int> labels) const {
  const std::size_t per_class =
      options_.channels * options_.height * options_.width;
  ADASUM_CHECK_EQ(input.size(), per_class);
  ADASUM_CHECK_EQ(labels.size(), 1u);
  const std::uint64_t example_seed =
      options_.example_seed != 0 ? options_.example_seed : options_.seed;
  Rng rng = Rng(example_seed).fork(0xDA7A).fork(index);
  const std::size_t cls = index % options_.num_classes;
  const float* proto = prototypes_.data() + cls * per_class;
  for (std::size_t i = 0; i < per_class; ++i)
    input[i] =
        proto[i] + static_cast<float>(rng.normal(0.0, options_.noise));
  labels[0] = static_cast<int>(cls);
}

MarkovTextDataset::MarkovTextDataset(const Options& options)
    : options_(options) {
  ADASUM_CHECK_GE(options_.vocab, 2u);
  ADASUM_CHECK_GE(options_.seq_len, options_.burn_in + 1);
  transitions_.resize(options_.vocab * options_.vocab);
  Rng rng = Rng(options_.seed).fork(0x7EB7);
  for (auto& t : transitions_)
    t = static_cast<std::uint16_t>(rng.uniform_int(options_.vocab));
}

void MarkovTextDataset::fill_example(std::size_t index,
                                     std::span<float> input,
                                     std::span<int> labels) const {
  const std::size_t len = options_.seq_len;
  ADASUM_CHECK_EQ(input.size(), len);
  ADASUM_CHECK_EQ(labels.size(), len);
  const std::uint64_t example_seed =
      options_.example_seed != 0 ? options_.example_seed : options_.seed;
  Rng rng = Rng(example_seed).fork(0x5E9).fork(index);
  // Generate len+1 tokens; inputs are tokens [0, len), labels are the next
  // token at each position.
  std::size_t prev2 = rng.uniform_int(options_.vocab);
  std::size_t prev1 = rng.uniform_int(options_.vocab);
  std::vector<std::size_t> tokens(len + 1);
  tokens[0] = prev2;
  tokens[1] = prev1;
  for (std::size_t t = 2; t <= len; ++t) {
    std::size_t next;
    if (rng.uniform() < options_.noise) {
      next = rng.uniform_int(options_.vocab);
    } else {
      next = transitions_[prev2 * options_.vocab + prev1];
    }
    tokens[t] = next;
    prev2 = prev1;
    prev1 = next;
  }
  for (std::size_t t = 0; t < len; ++t) {
    input[t] = static_cast<float>(tokens[t]);
    labels[t] = t + 1 <= options_.burn_in ? -1
                                          : static_cast<int>(tokens[t + 1]);
  }
}

}  // namespace adasum::data
